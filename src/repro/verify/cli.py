"""Command line front door: ``python -m repro.verify [command] ...``.

Subcommands (the bare legacy form ``python -m repro.verify <program>``
still runs lint + checked sweep, unchanged):

* ``lint`` — guest-binary static analysis only;
* ``sweep`` — checked translation sweep: IR verified after the
  frontend and every optimizer pass, host code after codegen and
  scheduling;
* ``equiv`` — symbolic translation validation: prove every reachable
  block's guest ≡ IR ≡ host equivalence (``--jobs`` fans out across
  processes);
* ``jit`` — symbolic closure validation: prove guest ≡ JIT-closure for
  every JIT-eligible block (same sweep harness and flags as ``equiv``);
* ``trace`` — trace-closure validation: run each workload live with the
  trace JIT on and structurally verify every installed superblock
  closure (entry guards, side-exit spill completeness, per-block stats
  accounting) plus the engine's trace-map consistency invariants;
* ``lint-src`` — determinism/soundness AST lint over the simulator's
  own Python sources;
* ``model`` — explicit-state model checking of the simulator's
  protocols (SMC invalidation, superblock chaining, the morph FSM, the
  concurrent disk cache): exhaustive BFS over small-scope models with
  counterexample traces; ``--planted`` additionally proves each model
  catches its planted-bug variants;
* ``conform`` — trace conformance: replay raw event streams (from
  ``python -m repro.obs trace --raw`` exports, or live runs of the
  named workloads with the JIT on and off) against the same protocol
  invariants;
* ``all`` — the whole ladder in one invocation (lint, lint-src, sweep,
  equiv, jit, model) with a single JSON summary.

Every command exits non-zero iff it produced a finding of ERROR
severity (warnings and INFO notes never fail the run), so CI can gate
on any of them uniformly.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.verify.findings import Severity, VerificationError
from repro.verify.guestlint import lint_program
from repro.verify.pipeline import checked_translate_program
from repro.workloads.suite import SPECINT_NAMES

_COMMANDS = (
    "lint", "sweep", "equiv", "jit", "trace", "lint-src", "model", "conform", "all",
)

#: Preset used when ``conform`` runs workloads live: it morphs eagerly,
#: so the traces exercise every checked category.
CONFORM_CONFIG = "morph_threshold_5"


def _load(name: str, scale: float):
    from repro.harness.equivsweep import load_program

    try:
        return load_program(name, scale)
    except ValueError as err:
        raise SystemExit(f"error: {err}") from err


def _lint_one(name: str, args: argparse.Namespace) -> bool:
    program = _load(name, args.scale)
    print(f"== {name} ==")
    report = lint_program(program)
    print(
        f"guestlint: {report.reachable_instructions} reachable instructions, "
        f"{report.reachable_bytes}/{report.text_bytes} text bytes covered, "
        f"{len(report.findings)} findings"
    )
    shown = [
        f for f in report.findings
        if args.verbose or f.severity >= Severity.WARNING
    ]
    limit = len(shown) if args.verbose else args.max_findings
    for finding in shown[:limit]:
        print(f"  {finding}")
    if len(shown) > limit:
        print(f"  ... and {len(shown) - limit} more (use -v to see all)")
    return not report.errors


def _sweep_one(name: str, args: argparse.Namespace) -> bool:
    program = _load(name, args.scale)
    try:
        sweep = checked_translate_program(program)
    except VerificationError as err:
        print(f"{name}: checked translation FAILED:\n{err}")
        return False
    print(
        f"{name}: checked translation: {sweep.block_count} blocks, "
        f"{sweep.guest_instructions} guest -> {sweep.host_instructions} host "
        "instructions, all verifier-clean"
    )
    if sweep.faults:
        print(f"  ({len(sweep.faults)} statically undecodable block starts skipped)")
    return True


def _run_equiv(names: List[str], args: argparse.Namespace, mode: str) -> bool:
    from repro.harness.equivsweep import run_sweep

    rows = run_sweep(
        names, scale=args.scale, vectors=args.vectors, seed=args.seed,
        jobs=args.jobs, mode=mode,
    )
    clean = True
    for row in rows:
        print(row)
        if args.verbose:
            for warning in row.warnings:
                print(f"  {warning}")
        clean = clean and row.ok
    print(
        "total: {blocks} blocks, {proved} proved, {validated} assumed, "
        "{refuted} refuted, {skipped} skipped".format(
            blocks=sum(row.blocks for row in rows),
            proved=sum(row.proved for row in rows),
            validated=sum(row.validated for row in rows),
            refuted=sum(row.refuted for row in rows),
            skipped=sum(row.skipped for row in rows),
        )
    )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump([row.as_dict() for row in rows], fh, indent=2)
        print(f"wrote {args.json}")
    return clean


def _trace_one(name: str, args: argparse.Namespace) -> bool:
    """Run ``name`` live with the trace tier on; verify every trace."""
    from repro.morph.config import PRESETS
    from repro.verify.jitverify import verify_trace
    from repro.vm.timing import TimingVM

    program = _load(name, args.scale)
    vm = TimingVM(program, PRESETS[CONFORM_CONFIG], jit=True, trace_jit=True)
    vm.run()
    tracejit = vm._tracejit
    if tracejit is None:
        print(f"{name}: trace JIT unavailable (block JIT disabled); skipped")
        return True
    failures = 0
    for head in sorted(tracejit.entries):
        try:
            verify_trace(tracejit.entries[head], vm.interp)
        except VerificationError as err:
            failures += 1
            print(f"{name}: trace at {head:#x} FAILED:\n{err}")
    findings = tracejit.check_consistency()
    for finding in findings:
        print(f"  {finding}")
    blocks = sum(t.blocks for t in tracejit.entries.values())
    print(
        f"{name}: {len(tracejit.entries)} traces ({blocks} blocks) verified, "
        f"{failures} failed, {len(findings)} consistency findings"
    )
    return failures == 0 and not findings


def _run_lint_src(args: argparse.Namespace) -> bool:
    from repro.verify.lintsrc import lint_tree

    findings = lint_tree(allowlist=args.allowlist)
    errors = 0
    for finding in findings:
        print(finding)
        if finding.severity >= Severity.ERROR:
            errors += 1
    print(f"lint-src: {len(findings)} findings, {errors} errors")
    return errors == 0


def _run_model(args: argparse.Namespace) -> bool:
    from repro.verify.protocol import MODELS, PLANTED_BUGS, check_model
    from repro.verify.protocol.mc import DEFAULT_MAX_STATES

    max_states = args.max_states if args.max_states else DEFAULT_MAX_STATES
    names = list(args.models) or list(MODELS)
    for name in names:
        if name not in MODELS:
            raise SystemExit(
                f"error: unknown model {name!r} (choose from {', '.join(MODELS)})"
            )
    clean = True
    results = []
    for name in names:
        result = check_model(MODELS[name](), max_states=max_states)
        print(result)
        for violation in result.violations:
            print(f"  {violation}")
        if result.truncated:
            print(f"  TRUNCATED at {max_states} states — bound too small")
        results.append(result.as_dict())
        clean = clean and result.ok

    planted = []
    if args.planted:
        print("-- planted bugs --")
        for variant in sorted(PLANTED_BUGS):
            model_name, kwargs, expected = PLANTED_BUGS[variant]
            if model_name not in names:
                continue
            result = check_model(MODELS[model_name](**kwargs), max_states=max_states)
            caught = [v for v in result.violations if v.invariant == expected]
            status = "caught" if caught else "MISSED"
            print(f"{variant}: {status} (expected {expected})")
            if caught and args.verbose:
                print(f"  {caught[0]}")
            planted.append({
                "variant": variant,
                "model": model_name,
                "expected": expected,
                "caught": bool(caught),
                "trace": list(caught[0].trace) if caught else None,
            })
            clean = clean and bool(caught)

    print(
        "total: {states} states, {transitions} transitions, "
        "{checks} invariant checks across {models} models".format(
            states=sum(r["states"] for r in results),
            transitions=sum(r["transitions"] for r in results),
            checks=sum(r["invariant_checks"] for r in results),
            models=len(results),
        )
    )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"models": results, "planted": planted}, fh, indent=2)
        print(f"wrote {args.json}")
    return clean


def _conform_live(name: str, jit: bool, args: argparse.Namespace):
    from repro.obs.events import Tracer
    from repro.vm.timing import TimingVM

    from repro.morph.config import PRESETS
    from repro.verify.protocol import conform_vm

    if args.config not in PRESETS:
        raise SystemExit(
            f"error: unknown config {args.config!r} "
            f"(choose from {', '.join(sorted(PRESETS))})"
        )
    program = _load(name, args.scale)
    tracer = Tracer(args.capacity) if args.capacity else Tracer()
    vm = TimingVM(program, PRESETS[args.config], tracer=tracer, jit=jit)
    vm.run()
    return conform_vm(vm)


def _run_conform(args: argparse.Namespace) -> bool:
    from repro.verify.protocol import conform_events

    targets = list(args.targets) or list(SPECINT_NAMES)
    jit_modes = {"on": [True], "off": [False], "both": [False, True]}[args.jit]
    clean = True
    rows = []
    for target in targets:
        if target.endswith(".json"):
            try:
                with open(target) as fh:
                    doc = json.load(fh)
            except (OSError, json.JSONDecodeError) as err:
                raise SystemExit(f"error: {target}: {err}") from err
            if not isinstance(doc, dict) or "events" not in doc:
                raise SystemExit(
                    f"error: {target}: not a raw trace (expected the "
                    "`python -m repro.obs trace --raw` schema with an 'events' list)"
                )
            reports = [(target, conform_events(doc["events"], dropped=doc.get("dropped", 0)))]
        else:
            reports = [
                (f"{target} [jit={'on' if jit else 'off'}]", _conform_live(target, jit, args))
                for jit in jit_modes
            ]
        for label, report in reports:
            print(f"{label}: {report}")
            shown = report.findings if args.verbose else [
                f for f in report.findings if f.severity >= Severity.ERROR
            ]
            limit = len(shown) if args.verbose else args.max_findings
            for finding in shown[:limit]:
                print(f"  {finding}")
            if len(shown) > limit:
                print(f"  ... and {len(shown) - limit} more (use -v to see all)")
            rows.append({"target": label, **report.as_dict()})
            clean = clean and report.ok
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(rows, fh, indent=2)
        print(f"wrote {args.json}")
    return clean


def _run_all(args: argparse.Namespace) -> bool:
    """Every verification tier in sequence, one summary at the end."""
    names = list(args.programs) or list(SPECINT_NAMES)
    sub = dict(vars(args))
    sub["json"] = None  # sections must not clobber the summary path
    sub["models"] = []  # model section always checks all four models
    sub["planted"] = True
    section_args = argparse.Namespace(**sub)

    def _lint_section() -> bool:
        return all([_lint_one(name, section_args) for name in names])

    def _sweep_section() -> bool:
        return all([_sweep_one(name, section_args) for name in names])

    def _trace_section() -> bool:
        return all([_trace_one(name, section_args) for name in names])

    sections = (
        ("lint", _lint_section),
        ("lint-src", lambda: _run_lint_src(section_args)),
        ("sweep", _sweep_section),
        ("equiv", lambda: _run_equiv(names, section_args, mode="equiv")),
        ("jit", lambda: _run_equiv(names, section_args, mode="jit")),
        ("trace", _trace_section),
        ("model", lambda: _run_model(section_args)),
    )
    summary = {}
    clean = True
    for title, run in sections:
        print(f"==== {title} ====")
        ok = run()
        summary[title] = {"ok": ok}
        clean = clean and ok
        print()

    print("==== summary ====")
    for title, row in summary.items():
        print(f"{title}: {'ok' if row['ok'] else 'FAIL'}")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"sections": summary, "ok": clean}, fh, indent=2)
        print(f"wrote {args.json}")
    return clean


def _common_arguments(parser: argparse.ArgumentParser, equiv: bool = False) -> None:
    parser.add_argument(
        "programs", nargs="*",
        help="workload names and/or VX86 .asm files (default: all workloads)",
    )
    parser.add_argument("--list", action="store_true", help="list built-in workloads and exit")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="workload scale factor (default 0.1; code size is scale-invariant)")
    parser.add_argument("--max-findings", type=int, default=10,
                        help="findings shown per program (default 10)")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="show INFO findings / skip warnings without truncation")
    if equiv:
        parser.add_argument("--vectors", type=int, default=8,
                            help="random vectors per unproved obligation (default 8)")
        parser.add_argument("--seed", type=int, default=0x5EED,
                            help="base seed for the refutation vectors")
        parser.add_argument("--jobs", type=int, default=1,
                            help="worker processes for the sweep (default 1)")
        parser.add_argument("--json", metavar="PATH", default=None,
                            help="write per-program obligation counts as JSON")


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    command = "check"
    if argv and argv[0] in _COMMANDS:
        command, argv = argv[0], argv[1:]

    descriptions = {
        "check": "Static verification of guest programs and their translations.",
        "lint": "Guest-binary static analysis (CFG recovery, decode and flag lint).",
        "sweep": "Checked translation sweep with the static IR/host verifiers.",
        "equiv": "Symbolic translation validation: prove guest = IR = host per block.",
        "jit": "Symbolic closure validation: prove guest = JIT-closure per block.",
        "trace": "Trace-closure validation: verify every installed superblock trace.",
        "lint-src": "Determinism/soundness AST lint over the simulator sources.",
        "model": "Explicit-state model checking of the simulator's protocols.",
        "conform": "Trace conformance: replay event streams against the protocol models.",
        "all": "Run every verification tier and print one summary.",
    }
    parser = argparse.ArgumentParser(
        prog=f"python -m repro.verify{'' if command == 'check' else ' ' + command}",
        description=descriptions[command],
    )
    if command == "lint-src":
        parser.add_argument("--allowlist", default=None,
                            help="allowlist file (default: lint-src-allowlist.txt "
                                 "at the repository root, if present)")
        args = parser.parse_args(argv)
        clean = _run_lint_src(args)
        if not clean:
            print("FAIL: errors found", file=sys.stderr)
        return 0 if clean else 1

    if command == "model":
        parser.add_argument(
            "models", nargs="*",
            help="models to check: smc, chain, morph, diskcache (default: all)",
        )
        parser.add_argument("--max-states", type=int, default=None,
                            help="BFS state bound (default 200000)")
        parser.add_argument("--planted", action="store_true",
                            help="also check every planted-bug variant and require "
                                 "the expected counterexample")
        parser.add_argument("--json", metavar="PATH", default=None,
                            help="write results (and planted-bug verdicts) as JSON")
        parser.add_argument("-v", "--verbose", action="store_true",
                            help="show counterexample traces for planted bugs too")
        args = parser.parse_args(argv)
        clean = _run_model(args)
        if not clean:
            print("FAIL: errors found", file=sys.stderr)
        return 0 if clean else 1

    if command == "conform":
        parser.add_argument(
            "targets", nargs="*",
            help="raw-trace .json files (from `python -m repro.obs trace --raw`) "
                 "and/or workload names to run live (default: all workloads)",
        )
        parser.add_argument("--scale", type=float, default=0.1,
                            help="workload scale for live runs (default 0.1)")
        parser.add_argument("--config", default=CONFORM_CONFIG,
                            help=f"virtual-arch preset for live runs (default {CONFORM_CONFIG})")
        parser.add_argument("--jit", choices=("on", "off", "both"), default="both",
                            help="JIT modes for live runs (default both)")
        parser.add_argument("--capacity", type=int, default=None,
                            help="trace ring-buffer capacity for live runs "
                                 "(default: the tracer default)")
        parser.add_argument("--max-findings", type=int, default=10,
                            help="violations shown per target (default 10)")
        parser.add_argument("--json", metavar="PATH", default=None,
                            help="write per-target conformance reports as JSON")
        parser.add_argument("-v", "--verbose", action="store_true",
                            help="show warnings and all findings without truncation")
        args = parser.parse_args(argv)
        clean = _run_conform(args)
        if not clean:
            print("FAIL: errors found", file=sys.stderr)
        return 0 if clean else 1

    if command == "all":
        _common_arguments(parser, equiv=True)
        parser.set_defaults(scale=0.05)
        parser.add_argument("--allowlist", default=None,
                            help="lint-src allowlist file (default: repo root)")
        parser.add_argument("--max-states", type=int, default=None,
                            help="model-checker BFS state bound (default 200000)")
        args = parser.parse_args(argv)
        if args.list:
            print("\n".join(SPECINT_NAMES))
            return 0
        clean = _run_all(args)
        if not clean:
            print("FAIL: errors found", file=sys.stderr)
        return 0 if clean else 1

    _common_arguments(parser, equiv=command in ("equiv", "jit"))
    if command == "check":
        parser.add_argument("--no-translate", action="store_true",
                            help="guest lint only; skip the checked translation sweep")
    args = parser.parse_args(argv)

    if args.list:
        print("\n".join(SPECINT_NAMES))
        return 0

    names = list(args.programs) or list(SPECINT_NAMES)
    if command in ("equiv", "jit"):
        clean = _run_equiv(names, args, mode=command)
    elif command == "trace":
        clean = all([_trace_one(name, args) for name in names])
    else:
        clean = True
        for name in names:
            if command in ("check", "lint") and not _lint_one(name, args):
                clean = False
            if command == "sweep" or (command == "check" and not args.no_translate):
                if not _sweep_one(name, args):
                    clean = False
    if not clean:
        print("FAIL: errors found", file=sys.stderr)
    return 0 if clean else 1

"""Tests for the synthetic SpecInt workload suite."""

import pytest

from repro.guest.interpreter import GuestInterpreter
from repro.vm.functional import FunctionalVM
from repro.workloads import SPECINT_NAMES, build_workload, workload_specs
from repro.workloads.builder import FarmConfig, build_farm
from repro.workloads.suite import build_source


class TestSuiteRegistry:
    def test_eleven_benchmarks_eon_omitted(self):
        assert len(SPECINT_NAMES) == 11
        assert "252.eon" not in SPECINT_NAMES  # omitted, as in the paper

    def test_specs_cover_names(self):
        specs = workload_specs()
        assert set(specs) == set(SPECINT_NAMES)

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            build_workload("999.nope")


class TestDeterminism:
    def test_same_source_every_build(self):
        assert build_source("164.gzip") == build_source("164.gzip")

    def test_scaled_source_differs(self):
        assert build_source("164.gzip", 0.5) != build_source("164.gzip", 1.0)


@pytest.mark.parametrize("name", SPECINT_NAMES)
class TestEveryWorkload:
    def test_builds_and_terminates(self, name):
        program = build_workload(name, scale=0.25)
        interp = GuestInterpreter.for_program(program)
        exit_code = interp.run(max_instructions=2_000_000)
        assert 0 <= exit_code <= 255
        assert interp.stats["instructions"] > 500

    def test_deterministic_execution(self, name):
        first = GuestInterpreter.for_program(build_workload(name, scale=0.25))
        second = GuestInterpreter.for_program(build_workload(name, scale=0.25))
        assert first.run(2_000_000) == second.run(2_000_000)
        assert first.stats["instructions"] == second.stats["instructions"]


class TestCodeFootprints:
    """The suite's slowdown spread rests on these footprint contrasts."""

    def test_small_code_benchmarks(self):
        for name in ["164.gzip", "181.mcf", "197.parser", "256.bzip2"]:
            assert build_workload(name).code_size < 16 * 1024, name

    def test_large_code_benchmarks(self):
        for name in ["176.gcc", "255.vortex", "186.crafty"]:
            assert build_workload(name).code_size > 24 * 1024, name

    def test_gcc_is_the_largest(self):
        sizes = {name: build_workload(name).code_size for name in SPECINT_NAMES}
        assert max(sizes, key=sizes.get) == "176.gcc"


class TestWorkloadsThroughDbt:
    """Differential check: a workload translated and executed through the
    full DBT pipeline matches the reference interpreter."""

    @pytest.mark.parametrize("name", ["164.gzip", "181.mcf", "253.perlbmk", "256.bzip2"])
    def test_functional_vm_matches_interpreter(self, name):
        program = build_workload(name, scale=0.1)
        golden = GuestInterpreter.for_program(build_workload(name, scale=0.1))
        golden_exit = golden.run(2_000_000)
        vm = FunctionalVM(program)
        assert vm.run() == golden_exit


class TestFarmBuilder:
    def test_farm_respects_function_count(self):
        farm = build_farm(FarmConfig(functions=7, sequence_length=10, seed=3), prefix="t")
        labels = [line for line in farm.text_lines if line.startswith("t_fn")]
        assert len([l for l in labels if l.endswith(":")]) >= 7

    def test_phased_farm_has_per_round_sweeps(self):
        config = FarmConfig(
            functions=20, sequence_length=8, hot_functions=4, phased_rounds=3, seed=9
        )
        farm = build_farm(config, prefix="p")
        assert len(farm.sweep_labels) == 3
        assert farm.sweep_for_round(0) != farm.sweep_for_round(1)
        assert farm.sweep_for_round(3) == farm.sweep_for_round(0)  # wraps

    def test_walker_only_in_hot_functions(self):
        config = FarmConfig(
            functions=6, hot_functions=2, walker_iterations=4, sequence_length=4, seed=5
        )
        farm = build_farm(config, prefix="w")
        text = "\n".join(farm.text_lines)
        assert "w_fn0_walk:" in text
        assert "w_fn1_walk:" in text
        assert "w_fn2_walk:" not in text

    def test_data_words_must_fit_masking(self):
        # power-of-two window is required by the walker's AND mask
        config = FarmConfig(functions=4, hot_functions=2, walker_iterations=2,
                            data_words=4096, sequence_length=4, seed=7)
        farm = build_farm(config, prefix="m")
        assert any("and ecx, 16352" in line for line in farm.text_lines)

"""Focused unit tests for code generation, cost model and scheduler."""


from repro.guest.assembler import assemble
from repro.dbt.codegen import (
    ALLOCATABLE,
    PARITY_TABLE_BASE,
    SCRATCH_BASE,
    generate_block,
    parity_table,
)
from repro.dbt.cost import estimate_block_cost, instruction_occupancy
from repro.dbt.frontend import build_ir
from repro.dbt.optimizer import optimize_block
from repro.dbt.optimizer.scheduler import schedule_block
from repro.dbt.translator import TranslationConfig, Translator
from repro.host.decoder import decode_host_instruction
from repro.host.encoder import encode_host_instruction
from repro.host.isa import (
    ExitReason,
    FLAGS_HOME,
    GUEST_REG_HOME,
    HostInstr,
    HostOp,
    HostReg,
)


def block_for(source: str, optimize: bool = True):
    program = assemble(source)
    text = program.text

    def read(address, length):
        offset = address - text.address
        return text.data[offset : offset + length]

    ir = build_ir(read, program.entry)
    if optimize:
        optimize_block(ir)
    return generate_block(ir)


class TestGeneratedCode:
    def test_every_instruction_encodes(self):
        block = block_for("_start: add eax, [ebx + ecx*4 + 8]\nimul edx, esi\nhlt\n")
        for instr in block.instrs:
            word = encode_host_instruction(instr)
            assert decode_host_instruction(word).op is instr.op

    def test_blocks_are_relocatable(self):
        # no absolute jumps inside a freshly generated block
        block = block_for("_start: cmp eax, 5\njne _start\nhlt\n")
        for instr in block.instrs:
            assert instr.op not in (HostOp.J, HostOp.JAL), "blocks must be relocatable"

    def test_stub_layout_is_uniform(self):
        block = block_for("_start: cmp eax, 5\njne _start\nhlt\n")
        assert len(block.exit_stubs) == 2
        for stub in block.exit_stubs:
            # lui/ori (or move/nop) then exitb: patch site is the exitb
            exitb = block.instrs[stub.patch_offset_words]
            assert exitb.op is HostOp.EXITB

    def test_conditional_block_has_two_targets(self):
        block = block_for("_start: cmp eax, 5\njne _start\nhlt\n")
        targets = sorted(t for _, t in block.stub_patch_offsets())
        assert len(targets) == 2

    def test_guard_emits_fault_stub(self):
        block = block_for("_start: div ecx\nhlt\n")
        kinds = [s.kind for s in block.exit_stubs]
        assert ExitReason.FAULT in kinds

    def test_syscall_stub(self):
        block = block_for("_start: int 0x80\n")
        assert block.exit_stubs[-1].kind is ExitReason.SYSCALL
        assert block.exit_kind == "syscall"

    def test_pinned_registers_not_allocated(self):
        for pinned in GUEST_REG_HOME:
            assert pinned not in ALLOCATABLE
        assert FLAGS_HOME not in ALLOCATABLE
        assert HostReg.V0 not in ALLOCATABLE

    def test_parity_table_contents(self):
        table = parity_table()
        assert len(table) == 256
        assert table[0] == 1  # zero bits: even
        assert table[1] == 0
        assert table[3] == 1
        assert table[0xFF] == 1

    def test_private_regions_do_not_collide(self):
        assert SCRATCH_BASE >> 12 != PARITY_TABLE_BASE >> 12

    def test_high_register_pressure_spills(self):
        # a block with many simultaneously-live values must spill, not crash
        lines = ["_start:"]
        for i in range(14):
            lines.append(f"    mov [0x8400000 + {i * 4}], {i + 1000}")
        # read-combine everything so all loads stay live
        lines.append("    mov eax, [0x8400000]")
        for i in range(1, 14):
            lines.append(f"    add eax, [0x8400000 + {i * 4}]")
        lines.append("    hlt")
        block = block_for("\n".join(lines), optimize=False)
        assert block.host_size_bytes > 0


class TestCostModel:
    def test_load_latency_stalls_dependent_use(self):
        load = HostInstr(HostOp.LW, rt=HostReg.T0, rs=HostReg.S0, imm=0)
        use = HostInstr(HostOp.ADDU, rd=HostReg.T1, rs=HostReg.T0, rt=HostReg.T0)
        dependent = estimate_block_cost([load, use])
        filler = HostInstr(HostOp.ADDIU, rt=HostReg.T2, rs=HostReg.ZERO, imm=1)
        hidden = estimate_block_cost([load, filler, filler, use])
        assert dependent > estimate_block_cost([load]) + 1
        assert hidden <= dependent + 2  # fillers hide latency

    def test_hardware_mmu_intrinsics_cheaper(self):
        instrs = [
            HostInstr(HostOp.LW, rt=HostReg.T0, rs=HostReg.S0, imm=0),
            HostInstr(HostOp.ADDU, rd=HostReg.T1, rs=HostReg.T0, rt=HostReg.T0),
        ]
        software = estimate_block_cost(instrs)
        hardware = estimate_block_cost(instrs, load_latency=3, load_occupancy=1)
        assert hardware < software

    def test_occupancies(self):
        assert instruction_occupancy(HostInstr(HostOp.LW, rt=HostReg.T0)) == 4
        assert instruction_occupancy(HostInstr(HostOp.SW, rt=HostReg.T0)) == 2
        assert instruction_occupancy(HostInstr(HostOp.ADDU)) == 1


class TestScheduler:
    def test_preserves_instruction_multiset(self):
        block = block_for("_start: mov eax, [0x8400000]\nadd eax, ebx\nimul eax, ecx\nhlt\n")
        scheduled = schedule_block(block.instrs, pinned=[s.offset_words for s in block.exit_stubs])
        assert sorted(str(i) for i in scheduled) == sorted(str(i) for i in block.instrs)

    def test_never_crosses_stub_boundaries(self):
        block = block_for("_start: cmp eax, 5\njne _start\nhlt\n")
        pinned = [s.offset_words for s in block.exit_stubs]
        scheduled = schedule_block(block.instrs, pinned=pinned)
        for stub in block.exit_stubs:
            assert scheduled[stub.patch_offset_words].op is HostOp.EXITB

    def test_hoists_loads(self):
        load = HostInstr(HostOp.LW, rt=HostReg.T0, rs=HostReg.S0, imm=0)
        independent = HostInstr(HostOp.ADDIU, rt=HostReg.T1, rs=HostReg.ZERO, imm=5)
        use = HostInstr(HostOp.ADDU, rd=HostReg.T2, rs=HostReg.T0, rt=HostReg.T1)
        scheduled = schedule_block([independent, load, use])
        assert estimate_block_cost(scheduled) <= estimate_block_cost([independent, load, use])
        assert scheduled[0].op is HostOp.LW  # critical path first

    def test_store_load_order_preserved(self):
        store = HostInstr(HostOp.SW, rt=HostReg.T0, rs=HostReg.S0, imm=0)
        load = HostInstr(HostOp.LW, rt=HostReg.T1, rs=HostReg.S0, imm=0)
        scheduled = schedule_block([store, load])
        assert scheduled[0].op is HostOp.SW


class TestTranslationCostModel:
    def _translator(self, source, **config):
        program = assemble(source)
        text = program.text
        read = lambda a, n: text.data[a - text.address : a - text.address + n]
        return Translator(read, TranslationConfig(**config)), program

    def test_optimization_charged_per_uop(self):
        from repro.dbt.translator import (
            EMIT_PER_HOST_INSTR,
            OPTIMIZE_PER_UOP,
            TRANSLATE_BASE_COST,
            TRANSLATE_PER_GUEST_INSTR,
        )

        source = "_start: add eax, 1\nadd eax, 2\nhlt\n"
        opt, program = self._translator(source, optimize=True)
        block = opt.translate(program.entry)
        floor = (
            TRANSLATE_BASE_COST
            + TRANSLATE_PER_GUEST_INSTR * block.guest_instr_count
            + EMIT_PER_HOST_INSTR * len(block.instrs)
        )
        # the optimizer's per-uop charge is on top of the base pipeline
        assert block.translation_cycles >= floor + OPTIMIZE_PER_UOP * block.guest_instr_count

    def test_longer_blocks_cost_more(self):
        translator, program = self._translator(
            "_start: add eax, 1\nhlt\nbig:" + "add eax, 1\n" * 20 + "hlt\n"
        )
        small = translator.translate(program.entry)
        big = translator.translate(program.symbols["big"])
        assert big.translation_cycles > small.translation_cycles

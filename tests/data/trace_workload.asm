; Tiny deterministic workload for the golden Perfetto-export test.
;
; A counted loop that writes and re-reads a small array through a
; helper function: enough basic blocks to exercise translation,
; speculation, all three code-cache levels' bookkeeping and the data
; memory path, while staying small enough that the full event trace is
; a reviewable golden file.

_start:
    mov edi, array      ; array base (.data section)
    mov ecx, 8          ; element count
    mov eax, 0          ; running sum
fill_loop:
    cmp ecx, 0
    je sum_phase
    mov [edi], ecx      ; store the counter
    add edi, 4
    sub ecx, 1
    jmp fill_loop

sum_phase:
    mov edi, array
    mov ecx, 8
sum_loop:
    cmp ecx, 0
    je done
    call add_element
    add edi, 4
    sub ecx, 1
    jmp sum_loop

; eax += [edi]
add_element:
    mov edx, [edi]
    add eax, edx
    ret

done:
    mov ebx, eax        ; exit code = sum (36)
    mov eax, 1          ; sys_exit
    int 0x80
    hlt

.data
array:
    dd 0, 0, 0, 0, 0, 0, 0, 0

"""Equivalence sweep over real workloads plus CLI contract tests.

The full all-workload sweep runs in CI (``python -m repro.verify
equiv``); here a representative subset keeps the suite fast while still
exercising every pipeline stage on real guest code, and the CLI exit
codes are pinned: zero iff no ERROR-severity finding, for every
subcommand.
"""

import pytest

from repro.harness.equivsweep import run_sweep, sweep_one
from repro.verify.cli import main

#: small but diverse: byte loads/stores + short loops, pointer chasing
WORKLOADS = ("164.gzip", "181.mcf")
SCALE = 0.03


@pytest.mark.parametrize("name", WORKLOADS)
def test_workload_translation_is_equivalent(name):
    row = sweep_one(name, scale=SCALE, vectors=4)
    assert row.error is None, row.error
    assert row.refuted == 0
    assert row.skipped == 0
    assert row.blocks > 0
    assert row.proved > 0


def test_parallel_sweep_matches_serial():
    serial = run_sweep(WORKLOADS, scale=SCALE, vectors=4, jobs=1)
    parallel = run_sweep(WORKLOADS, scale=SCALE, vectors=4, jobs=2)
    for a, b in zip(serial, parallel):
        assert (a.name, a.blocks, a.proved, a.validated, a.refuted, a.skipped) == (
            b.name, b.blocks, b.proved, b.validated, b.refuted, b.skipped
        )


class TestCliExitCodes:
    def test_equiv_clean_program_exits_zero(self, tmp_path, capsys):
        source = "_start:\n    add eax, ebx\n    mov ecx, 7\n    int 0x80\n    hlt\n"
        path = tmp_path / "ok.asm"
        path.write_text(source)
        assert main(["equiv", str(path)]) == 0
        out = capsys.readouterr().out
        assert "refuted" in out

    def test_legacy_bare_invocation_still_works(self, tmp_path, capsys):
        source = "_start:\n    mov eax, 1\n    int 0x80\n    hlt\n"
        path = tmp_path / "ok.asm"
        path.write_text(source)
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "guestlint" in out and "checked translation" in out

    def test_lint_subcommand_exits_zero_on_clean(self, tmp_path, capsys):
        source = "_start:\n    mov eax, 1\n    int 0x80\n    hlt\n"
        path = tmp_path / "ok.asm"
        path.write_text(source)
        assert main(["lint", str(path)]) == 0
        assert "checked translation" not in capsys.readouterr().out

    def test_sweep_subcommand_exits_zero_on_clean(self, tmp_path, capsys):
        source = "_start:\n    mov eax, 1\n    int 0x80\n    hlt\n"
        path = tmp_path / "ok.asm"
        path.write_text(source)
        assert main(["sweep", str(path)]) == 0
        assert "guestlint" not in capsys.readouterr().out

    def test_unknown_program_is_an_error(self, capsys):
        assert main(["equiv", "no-such-workload"]) == 1
        capsys.readouterr()
        with pytest.raises(SystemExit):
            main(["lint", "no-such-workload"])

    def test_list_flag(self, capsys):
        assert main(["equiv", "--list"]) == 0
        assert "164.gzip" in capsys.readouterr().out

"""Unit tests for the translator frontend and IR passes."""

import pytest

from repro.guest.assembler import assemble
from repro.guest.isa import ConditionCode, Flag
from repro.dbt.frontend import (
    MAX_BLOCK_INSTRUCTIONS,
    TranslationError,
    build_ir,
    lower_block,
    scan_block,
)
from repro.dbt.ir import ExitKind, UOpKind, flag_mask
from repro.dbt.optimizer import (
    eliminate_dead_code,
    eliminate_dead_flags,
    fold_constants,
    optimize_block,
    propagate_copies,
)


def reader_for(source: str):
    """A code reader over an assembled program's .text section."""
    program = assemble(source)
    text = program.text

    def read(address, length):
        offset = address - text.address
        return text.data[offset : offset + length]

    return read, program


def ir_for(source: str, optimize: bool = False):
    read, program = reader_for(source)
    ir = build_ir(read, program.entry)
    if optimize:
        optimize_block(ir)
    return ir


class TestBlockScanning:
    def test_block_ends_at_branch(self):
        read, program = reader_for("_start: mov eax, 1\nadd eax, 2\njmp _start\n")
        block = scan_block(read, program.entry)
        assert len(block.instructions) == 3
        assert block.instructions[-1].op.value == "jmp"

    def test_block_ends_at_ret_call_int_hlt(self):
        for tail in ("ret", "call _start", "int 0x80", "hlt"):
            read, program = reader_for(f"_start: nop\n{tail}\n")
            block = scan_block(read, program.entry)
            assert len(block.instructions) == 2

    def test_long_block_is_split(self):
        body = "add eax, 1\n" * 50
        read, program = reader_for(f"_start:\n{body}hlt\n")
        block = scan_block(read, program.entry)
        assert len(block.instructions) == MAX_BLOCK_INSTRUCTIONS
        ir = lower_block(block)
        assert ir.terminator.kind is ExitKind.JUMP
        assert ir.terminator.target == block.end_address

    def test_illegal_bytes_raise(self):
        with pytest.raises(TranslationError):
            scan_block(lambda a, n: b"\xfe" * n, 0x1000)


class TestLowering:
    def test_simple_block_shape(self):
        ir = ir_for("_start: add eax, ebx\njmp _start\n")
        kinds = [u.kind for u in ir.uops]
        assert UOpKind.GET in kinds
        assert UOpKind.ADD in kinds
        assert UOpKind.FLAGS in kinds
        assert UOpKind.PUT in kinds
        assert ir.terminator.kind is ExitKind.JUMP

    def test_jcc_terminator(self):
        ir = ir_for("_start: cmp eax, 5\nje _start\nhlt\n")
        assert ir.terminator.kind is ExitKind.BRANCH
        assert ir.terminator.cc is ConditionCode.E
        assert ir.terminator.fallthrough == ir.guest_address + ir.guest_length

    def test_indirect_jump_terminator(self):
        ir = ir_for("_start: jmp eax\n")
        assert ir.terminator.kind is ExitKind.INDIRECT
        assert ir.terminator.temp is not None

    def test_call_records_return_address(self):
        ir = ir_for("_start: call target\ntarget: hlt\n")
        assert ir.call_return_address == ir.guest_address + ir.guest_length
        # return address is pushed
        assert any(u.kind is UOpKind.ST for u in ir.uops)

    def test_syscall_terminator(self):
        ir = ir_for("_start: int 0x80\n")
        assert ir.terminator.kind is ExitKind.SYSCALL

    def test_rmw_memory_operand_computes_ea_once(self):
        ir = ir_for("_start: add [eax + 4], ebx\nhlt\n")
        loads = [u for u in ir.uops if u.kind is UOpKind.LD]
        stores = [u for u in ir.uops if u.kind is UOpKind.ST]
        assert len(loads) == 1
        assert len(stores) == 1
        assert loads[0].a == stores[0].a  # same EA temp

    def test_division_emits_guards(self):
        ir = ir_for("_start: div ecx\nhlt\n")
        kinds = [u.kind for u in ir.uops]
        assert UOpKind.DIV0CHECK in kinds
        assert UOpKind.GUARD in kinds
        assert UOpKind.DIVU in kinds
        assert UOpKind.REMU in kinds

    def test_direct_successors(self):
        ir = ir_for("_start: cmp eax, 0\njne _start\nhlt\n")
        succs = ir.terminator.direct_successors()
        assert len(succs) == 2


class TestCopyPropagation:
    def test_redundant_gets_collapse(self):
        ir = ir_for("_start: add eax, ebx\nsub eax, ebx\nhlt\n")
        before = sum(1 for u in ir.uops if u.kind is UOpKind.GET)
        propagate_copies(ir)
        eliminate_dead_code(ir)
        after = sum(1 for u in ir.uops if u.kind is UOpKind.GET)
        # eax and ebx each need only one GET; the PUT feeds the re-read
        assert before > after
        assert after <= 2

    def test_put_feeds_later_get(self):
        ir = ir_for("_start: mov eax, 7\nmov ebx, eax\nhlt\n")
        propagate_copies(ir)
        fold_constants(ir)
        eliminate_dead_code(ir)
        # ebx should receive the same temp / constant without a GET of eax
        gets = [u for u in ir.uops if u.kind is UOpKind.GET]
        assert not gets


class TestConstantFolding:
    def test_constants_fold(self):
        ir = ir_for("_start: mov eax, 6\nadd eax, 7\nhlt\n")
        optimize_block(ir)
        consts = [u.imm for u in ir.uops if u.kind is UOpKind.CONST]
        assert 13 in consts
        adds = [u for u in ir.uops if u.kind is UOpKind.ADD]
        assert not adds

    def test_xor_self_becomes_zero(self):
        ir = ir_for("_start: xor eax, eax\nhlt\n")
        optimize_block(ir)
        assert not [u for u in ir.uops if u.kind is UOpKind.XOR]
        consts = [u for u in ir.uops if u.kind is UOpKind.CONST and u.imm == 0]
        assert consts

    def test_add_zero_is_identity(self):
        ir = ir_for("_start: add eax, 0\nhlt\n")
        optimize_block(ir)
        assert not [u for u in ir.uops if u.kind is UOpKind.ADD]

    def test_constant_indirect_target_becomes_direct(self):
        ir = ir_for("_start: mov eax, 0x8048000\njmp eax\n")
        optimize_block(ir)
        assert ir.terminator.kind is ExitKind.JUMP
        assert ir.terminator.target == 0x8048000


class TestDeadFlags:
    def test_back_to_back_alu_kills_flags(self):
        # add's flags all die at cmp; only cmp's flags survive for jne,
        # which needs ZF (plus the conservative all-live block exit).
        ir = ir_for("_start: add eax, 1\ncmp eax, 10\njne _start\nhlt\n")
        flags_ops = [u for u in ir.uops if u.kind is UOpKind.FLAGS]
        assert len(flags_ops) == 2
        eliminate_dead_flags(ir)
        flags_ops = [u for u in ir.uops if u.kind is UOpKind.FLAGS]
        assert len(flags_ops) == 1  # add's update removed entirely

    def test_inc_preserves_cf_liveness(self):
        # inc does not write CF, so add's CF stays live through it
        ir = ir_for("_start: add eax, ebx\ninc ecx\nhlt\n")
        eliminate_dead_flags(ir)
        flags_ops = [u for u in ir.uops if u.kind is UOpKind.FLAGS]
        add_flags = flags_ops[0]
        assert add_flags.mask & flag_mask([Flag.CF])
        # but add's ZF/SF/OF/PF are overwritten by inc
        assert not add_flags.mask & flag_mask([Flag.ZF])

    def test_setcc_keeps_its_flags_alive(self):
        ir = ir_for("_start: cmp eax, ebx\nsetl ecx\ncmp eax, edx\nhlt\n")
        eliminate_dead_flags(ir)
        flags_ops = [u for u in ir.uops if u.kind is UOpKind.FLAGS]
        assert len(flags_ops) == 2
        first = flags_ops[0]
        # setl reads SF and OF
        assert first.mask & flag_mask([Flag.SF, Flag.OF]) == flag_mask([Flag.SF, Flag.OF])

    def test_dynamic_shift_count_cannot_kill(self):
        # shl by cl may be a no-op, so add's flags stay live below it
        ir = ir_for("_start: add eax, ebx\nshl edx, ecx\nhlt\n")
        eliminate_dead_flags(ir)
        flags_ops = [u for u in ir.uops if u.kind is UOpKind.FLAGS]
        assert len(flags_ops) == 2
        assert flags_ops[0].mask != 0


class TestDeadCode:
    def test_shadowed_put_removed(self):
        ir = ir_for("_start: mov eax, 1\nmov eax, 2\nhlt\n")
        puts_before = sum(1 for u in ir.uops if u.kind is UOpKind.PUT)
        eliminate_dead_code(ir)
        puts_after = sum(1 for u in ir.uops if u.kind is UOpKind.PUT)
        assert puts_before == 2
        assert puts_after == 1

    def test_unused_values_removed(self):
        ir = ir_for("_start: lea eax, [ebx + ecx*4 + 8]\nmov eax, 5\nhlt\n")
        optimize_block(ir)
        # the lea result is dead; its address arithmetic should vanish
        assert not [u for u in ir.uops if u.kind is UOpKind.SHL]

    def test_stores_never_removed(self):
        ir = ir_for("_start: mov [0x8400000], 1\nmov [0x8400000], 2\nhlt\n")
        optimize_block(ir)
        stores = [u for u in ir.uops if u.kind is UOpKind.ST]
        assert len(stores) == 2  # no memory DCE without alias analysis

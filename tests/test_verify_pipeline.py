"""Checked translation mode: end-to-end cleanliness and attribution."""

import pytest

from repro.dbt.frontend import build_ir
from repro.dbt.ir import UOp, UOpKind
from repro.dbt.optimizer import PASS_PIPELINE, optimize_block
from repro.dbt.translator import TranslationConfig, Translator
from repro.guest.assembler import assemble
from repro.verify.findings import VerificationError
from repro.verify.irverify import assert_ir_ok
from repro.verify.pipeline import checked_translate_program
from repro.workloads.suite import SPECINT_NAMES, build_workload


def reader_for(source: str):
    program = assemble(source)
    text = program.text

    def read(address, length):
        offset = address - text.address
        return text.data[offset : offset + length]

    return read, program


SOURCE = "_start: add eax, ebx\ncmp eax, 100\njl low\nlow: mov [0x8400000], eax\nhlt\n"


class TestCheckedTranslator:
    def test_checked_translation_succeeds(self):
        read, program = reader_for(SOURCE)
        translator = Translator(read, TranslationConfig(checked=True))
        block = translator.translate(program.entry)
        assert block.instrs

    def test_checked_matches_unchecked_output(self):
        read, program = reader_for(SOURCE)
        checked = Translator(read, TranslationConfig(checked=True)).translate(program.entry)
        plain = Translator(read, TranslationConfig()).translate(program.entry)
        assert [str(i) for i in checked.instrs] == [str(i) for i in plain.instrs]

    def test_checked_unoptimized_translation(self):
        read, program = reader_for(SOURCE)
        translator = Translator(read, TranslationConfig(optimize=False, checked=True))
        assert translator.translate(program.entry).instrs


def _dup_def_pass(block, live):
    first = next(u.dst for u in block.uops if u.dst is not None)
    block.uops.append(UOp(UOpKind.CONST, dst=first, imm=0))


def _mask_clearing_pass(block, live):
    for uop in block.uops:
        if uop.kind is UOpKind.FLAGS:
            uop.mask = 0


class TestBrokenPassAttribution:
    def _ir(self):
        read, program = reader_for("_start: add eax, ebx\njz out\nout: hlt\n")
        return build_ir(read, program.entry)

    def test_broken_pass_is_named(self):
        ir = self._ir()
        observer = lambda name, blk: assert_ir_ok(blk, stage=name)  # noqa: E731
        with pytest.raises(VerificationError) as excinfo:
            optimize_block(
                ir,
                iterations=1,
                observer=observer,
                passes=[("goodpass", lambda b, live: None), ("breaker", _dup_def_pass)],
            )
        assert excinfo.value.stage == "breaker#0"
        assert any(f.code == "duplicate-def" for f in excinfo.value.findings)

    def test_flag_mis_elimination_attributed(self):
        ir = self._ir()
        observer = lambda name, blk: assert_ir_ok(blk, stage=name)  # noqa: E731
        with pytest.raises(VerificationError) as excinfo:
            optimize_block(
                ir, iterations=1, observer=observer,
                passes=[("overzealous-deadflags", _mask_clearing_pass)],
            )
        assert excinfo.value.stage == "overzealous-deadflags#0"
        assert any(f.code == "dead-flag-mis-elimination" for f in excinfo.value.findings)

    def test_healthy_pipeline_passes_observer(self):
        ir = self._ir()
        seen = []
        optimize_block(ir, iterations=2, observer=lambda name, blk: seen.append(name))
        assert len(seen) == 2 * len(PASS_PIPELINE)
        assert seen[0].endswith("#0") and seen[-1].endswith("#1")

    def test_translator_attributes_broken_pass(self, monkeypatch):
        read, program = reader_for("_start: add eax, ebx\njz out\nout: hlt\n")
        broken = PASS_PIPELINE + [("breaker", _dup_def_pass)]
        monkeypatch.setattr("repro.dbt.optimizer.PASS_PIPELINE", broken)
        translator = Translator(read, TranslationConfig(checked=True))
        with pytest.raises(VerificationError) as excinfo:
            translator.translate(program.entry)
        assert excinfo.value.stage.startswith("breaker")

    def test_unchecked_translator_does_not_verify(self, monkeypatch):
        # The same broken pipeline goes unnoticed without checked mode —
        # that asymmetry is the point of the knob.
        read, program = reader_for("_start: add eax, ebx\njz out\nout: hlt\n")
        broken = PASS_PIPELINE + [("breaker", _mask_clearing_pass)]
        monkeypatch.setattr("repro.dbt.optimizer.PASS_PIPELINE", broken)
        translator = Translator(read, TranslationConfig())
        translator.translate(program.entry)  # no raise


class TestWorkloadSweeps:
    @pytest.mark.parametrize("name", SPECINT_NAMES)
    def test_checked_sweep_is_clean(self, name):
        program = build_workload(name, scale=0.1)
        sweep = checked_translate_program(program)
        assert sweep.block_count > 0
        assert sweep.faults == []
        assert program.entry in sweep.blocks

    def test_sweep_counts_are_consistent(self):
        program = build_workload("181.mcf", scale=0.1)
        sweep = checked_translate_program(program)
        assert sweep.guest_instructions == sum(
            b.guest_instr_count for b in sweep.blocks.values()
        )
        assert sweep.host_instructions == sum(
            len(b.instrs) for b in sweep.blocks.values()
        )

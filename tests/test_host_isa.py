"""Tests for the R32 host ISA: encoding roundtrips and the interpreter."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.host.assembler import HostAssemblyError, assemble_host
from repro.host.decoder import HostDecodeError, decode_host_instruction
from repro.host.encoder import HostEncodeError, encode_host_instruction
from repro.host.interpreter import BlockExit, HostCodeSpace, HostFault, HostInterpreter
from repro.host.isa import (
    BRANCH1_OPS,
    BRANCH2_OPS,
    ExitReason,
    HostInstr,
    HostOp,
    HostReg,
    I_ALU_OPS,
    MEMORY_OPS,
    R_TYPE_OPS,
    nop,
)

regs = st.sampled_from(list(HostReg))
imm16s = st.integers(min_value=-0x8000, max_value=0x7FFF)
uimm16s = st.integers(min_value=0, max_value=0xFFFF)


class _DictPort:
    """Trivial data port over a dict, byte granular."""

    def __init__(self):
        self.mem = {}

    def load_u8(self, address):
        return self.mem.get(address, 0)

    def store_u8(self, address, value):
        self.mem[address] = value & 0xFF

    def load_u32(self, address):
        return int.from_bytes(bytes(self.load_u8(address + i) for i in range(4)), "little")

    def store_u32(self, address, value):
        for i, byte in enumerate((value & 0xFFFFFFFF).to_bytes(4, "little")):
            self.mem[address + i] = byte


def run_host(source: str, setup=None, base: int = 0x1000) -> HostInterpreter:
    instrs, _ = assemble_host(source, base=base)
    code = HostCodeSpace()
    code.write_block(base, instrs)
    interp = HostInterpreter(code, _DictPort())
    if setup:
        for reg, value in setup.items():
            interp[reg] = value
    interp.run_block(base)
    return interp


class TestEncodingRoundtrip:
    @given(op=st.sampled_from(sorted(R_TYPE_OPS, key=lambda o: o.value)), rd=regs, rs=regs, rt=regs)
    def test_r_type(self, op, rd, rs, rt):
        instr = HostInstr(op, rd=rd, rs=rs, rt=rt)
        decoded = decode_host_instruction(encode_host_instruction(instr))
        assert (decoded.op, decoded.rd, decoded.rs, decoded.rt) == (op, rd, rs, rt)

    @given(
        op=st.sampled_from([HostOp.SLL, HostOp.SRL, HostOp.SRA]),
        rd=regs,
        rt=regs,
        shamt=st.integers(min_value=0, max_value=31),
    )
    def test_shift_imm(self, op, rd, rt, shamt):
        instr = HostInstr(op, rd=rd, rt=rt, shamt=shamt)
        decoded = decode_host_instruction(encode_host_instruction(instr))
        assert (decoded.op, decoded.rd, decoded.rt, decoded.shamt) == (op, rd, rt, shamt)

    @given(op=st.sampled_from(sorted(I_ALU_OPS, key=lambda o: o.value)), rt=regs, rs=regs, imm=imm16s)
    def test_i_type(self, op, rt, rs, imm):
        if op in (HostOp.ANDI, HostOp.ORI, HostOp.XORI):
            imm &= 0xFFFF
        instr = HostInstr(op, rt=rt, rs=rs, imm=imm)
        decoded = decode_host_instruction(encode_host_instruction(instr))
        assert (decoded.op, decoded.rt, decoded.rs, decoded.imm) == (op, rt, rs, imm)

    @given(op=st.sampled_from(sorted(MEMORY_OPS, key=lambda o: o.value)), rt=regs, rs=regs, imm=imm16s)
    def test_memory_ops(self, op, rt, rs, imm):
        instr = HostInstr(op, rt=rt, rs=rs, imm=imm)
        decoded = decode_host_instruction(encode_host_instruction(instr))
        assert (decoded.op, decoded.rt, decoded.rs, decoded.imm) == (op, rt, rs, imm)

    @given(
        op=st.sampled_from(sorted(BRANCH2_OPS | BRANCH1_OPS, key=lambda o: o.value)),
        rs=regs,
        imm=imm16s,
    )
    def test_branches(self, op, rs, imm):
        instr = HostInstr(op, rs=rs, imm=imm)
        decoded = decode_host_instruction(encode_host_instruction(instr))
        assert (decoded.op, decoded.rs, decoded.imm) == (op, rs, imm)

    @given(
        op=st.sampled_from([HostOp.J, HostOp.JAL]),
        target=st.integers(min_value=0, max_value=0x0FFFFFFC // 4).map(lambda x: x * 4),
    )
    def test_jumps(self, op, target):
        instr = HostInstr(op, target=target)
        decoded = decode_host_instruction(encode_host_instruction(instr), address=0)
        assert decoded.target == target

    def test_exitb(self):
        for reason in ExitReason:
            instr = HostInstr(HostOp.EXITB, imm=int(reason))
            decoded = decode_host_instruction(encode_host_instruction(instr))
            assert decoded.op is HostOp.EXITB
            assert decoded.imm == int(reason)

    def test_lui_roundtrip(self):
        instr = HostInstr(HostOp.LUI, rt=HostReg.T0, imm=0xDEAD)
        decoded = decode_host_instruction(encode_host_instruction(instr))
        assert decoded.imm == 0xDEAD

    def test_imm_out_of_range_rejected(self):
        with pytest.raises(HostEncodeError):
            encode_host_instruction(HostInstr(HostOp.ADDIU, rt=HostReg.T0, imm=0x10000))
        with pytest.raises(HostEncodeError):
            encode_host_instruction(HostInstr(HostOp.ANDI, rt=HostReg.T0, imm=-1))

    def test_unknown_word_rejected(self):
        with pytest.raises(HostDecodeError):
            decode_host_instruction(0xFC000000 - 0x04000000)  # opcode 0x3E

    def test_nop_is_all_zero_word(self):
        assert encode_host_instruction(nop()) == 0


class TestInterpreterArithmetic:
    def test_add_sub(self):
        interp = run_host(
            """
            addiu $t0, $zero, 100
            addiu $t1, $zero, 42
            addu  $t2, $t0, $t1
            subu  $v0, $t0, $t1
            exitb branch
            """
        )
        assert interp[HostReg.T2] == 142
        assert interp[HostReg.V0] == 58

    def test_logic_and_shifts(self):
        interp = run_host(
            """
            addiu $t0, $zero, 0xF0
            ori   $t1, $t0, 0x0F
            sll   $t2, $t1, 8
            srl   $t3, $t2, 4
            xor   $v0, $t2, $t3
            exitb branch
            """
        )
        assert interp[HostReg.T1] == 0xFF
        assert interp[HostReg.T2] == 0xFF00
        assert interp[HostReg.T3] == 0x0FF0

    def test_lui_ori_builds_constant(self):
        interp = run_host("lui $t0, 0x1234\nori $v0, $t0, 0x5678\nexitb branch\n")
        assert interp[HostReg.V0] == 0x12345678

    def test_slt_signed_vs_unsigned(self):
        interp = run_host(
            """
            addiu $t0, $zero, -1
            addiu $t1, $zero, 1
            slt   $t2, $t0, $t1
            sltu  $t3, $t0, $t1
            exitb branch
            """
        )
        assert interp[HostReg.T2] == 1  # -1 < 1 signed
        assert interp[HostReg.T3] == 0  # 0xFFFFFFFF > 1 unsigned

    def test_mult_div_hilo(self):
        interp = run_host(
            """
            addiu $t0, $zero, 1000
            addiu $t1, $zero, 7
            multu $t0, $t0
            mflo  $t2            ; 1000000
            divu  $t2, $t1
            mflo  $t3            ; 142857
            mfhi  $t4            ; 1
            exitb branch
            """
        )
        assert interp[HostReg.T2] == 1_000_000
        assert interp[HostReg.T3] == 142_857
        assert interp[HostReg.T4] == 1

    def test_signed_division_truncates(self):
        interp = run_host(
            """
            addiu $t0, $zero, -100
            addiu $t1, $zero, 7
            div   $t0, $t1
            mflo  $t2
            mfhi  $t3
            exitb branch
            """
        )
        assert interp[HostReg.T2] == (-14) & 0xFFFFFFFF
        assert interp[HostReg.T3] == (-2) & 0xFFFFFFFF

    def test_divide_by_zero_faults(self):
        with pytest.raises(HostFault):
            run_host("divu $t0, $zero\nexitb branch\n")

    def test_zero_register_is_immutable(self):
        interp = run_host("addiu $zero, $zero, 5\naddu $v0, $zero, $zero\nexitb branch\n")
        assert interp[HostReg.V0] == 0


class TestInterpreterControlFlow:
    def test_loop(self):
        interp = run_host(
            """
            addiu $t0, $zero, 10
            addiu $v0, $zero, 0
            loop:
            addu  $v0, $v0, $t0
            addiu $t0, $t0, -1
            bne   $t0, $zero, loop
            exitb branch
            """
        )
        assert interp[HostReg.V0] == 55

    def test_branch_flavors(self):
        interp = run_host(
            """
            addiu $t0, $zero, -5
            bltz  $t0, neg
            addiu $v0, $zero, 1
            exitb branch
            neg:
            addiu $v0, $zero, 2
            bgez  $zero, done
            addiu $v0, $zero, 3
            done:
            exitb branch
            """
        )
        assert interp[HostReg.V0] == 2

    def test_jal_jr(self):
        interp = run_host(
            """
            jal   func
            addiu $v0, $t0, 1
            exitb branch
            func:
            addiu $t0, $zero, 41
            jr    $ra
            """,
            base=0x1000,
        )
        assert interp[HostReg.V0] == 42

    def test_exit_reports_reason_and_site(self):
        instrs, symbols = assemble_host("addiu $v0, $zero, 0x77\nexitb syscall\n", base=0x2000)
        code = HostCodeSpace()
        code.write_block(0x2000, instrs)
        interp = HostInterpreter(code, _DictPort())
        exit_info = interp.run_block(0x2000)
        assert isinstance(exit_info, BlockExit)
        assert exit_info.reason is ExitReason.SYSCALL
        assert exit_info.next_guest_pc == 0x77
        assert exit_info.exit_pc == 0x2004
        assert exit_info.instructions == 2

    def test_chained_jump_between_blocks(self):
        code = HostCodeSpace()
        a, _ = assemble_host("addiu $t0, $zero, 5\nj 0x3000\n", base=0x2000)
        b, _ = assemble_host("addiu $v0, $t0, 1\nexitb branch\n", base=0x3000)
        code.write_block(0x2000, a)
        code.write_block(0x3000, b)
        interp = HostInterpreter(code, _DictPort())
        exit_info = interp.run_block(0x2000)
        assert exit_info.next_guest_pc == 6
        assert exit_info.instructions == 4

    def test_runaway_budget(self):
        with pytest.raises(HostFault):
            run_host("loop: j loop\n", base=0x1000)

    def test_fetch_outside_code_faults(self):
        code = HostCodeSpace()
        interp = HostInterpreter(code, _DictPort())
        with pytest.raises(HostFault):
            interp.run_block(0x4000)


class TestInterpreterMemory:
    def test_store_load_roundtrip(self):
        interp = run_host(
            """
            lui   $t0, 0x1000
            addiu $t1, $zero, 0x1234
            sw    $t1, 8($t0)
            lw    $v0, 8($t0)
            sb    $t1, 1($t0)
            lbu   $t2, 1($t0)
            exitb branch
            """
        )
        assert interp[HostReg.V0] == 0x1234
        assert interp[HostReg.T2] == 0x34

    def test_lb_sign_extends(self):
        interp = run_host(
            """
            addiu $t1, $zero, 0xFF
            sb    $t1, 0($zero)
            lb    $v0, 0($zero)
            lbu   $v1, 0($zero)
            exitb branch
            """
        )
        assert interp[HostReg.V0] == 0xFFFFFFFF
        assert interp[HostReg.V1] == 0xFF


class TestCodeSpace:
    def test_patch_replaces_instruction(self):
        code = HostCodeSpace()
        instrs, _ = assemble_host("addiu $v0, $zero, 1\nexitb branch\n", base=0)
        code.write_block(0, instrs)
        code.patch(0, HostInstr(HostOp.ADDIU, rt=HostReg.V0, rs=HostReg.ZERO, imm=9))
        interp = HostInterpreter(code, _DictPort())
        assert interp.run_block(0).next_guest_pc == 9

    def test_patch_empty_slot_rejected(self):
        with pytest.raises(ValueError):
            HostCodeSpace().patch(0x100, nop())

    def test_erase(self):
        code = HostCodeSpace()
        code.write_block(0, [nop(), nop()])
        assert code.size_bytes == 8
        code.erase(0, 8)
        assert code.size_bytes == 0
        assert code.fetch(0) is None

    def test_unaligned_block_rejected(self):
        with pytest.raises(ValueError):
            HostCodeSpace().write_block(2, [nop()])


class TestHostAssembler:
    def test_pseudo_ops(self):
        interp = run_host("li $t0, 7\nmove $v0, $t0\nexitb branch\n")
        assert interp[HostReg.V0] == 7

    def test_li_range_checked(self):
        with pytest.raises(HostAssemblyError):
            assemble_host("li $t0, 0x10000\n")

    def test_unknown_mnemonic(self):
        with pytest.raises(HostAssemblyError):
            assemble_host("bogus $t0\n")

    def test_unknown_register(self):
        with pytest.raises(HostAssemblyError):
            assemble_host("addu $t0, $qq, $t1\n")

    def test_numeric_register_aliases(self):
        instrs, _ = assemble_host("addu $2, $8, $9\n")
        assert instrs[0].rd is HostReg.V0
        assert instrs[0].rs is HostReg.T0

"""End-to-end tests of the VX86 reference interpreter on real programs."""

import pytest

from repro.guest.assembler import assemble
from repro.guest.interpreter import AccessObserver, GuestFault, GuestInterpreter


def run_program(source: str, stdin: bytes = b"", max_instructions: int = 1_000_000):
    """Assemble, load and run; returns the finished interpreter."""
    program = assemble(source)
    interp = GuestInterpreter.for_program(program, stdin=stdin)
    interp.run(max_instructions)
    return interp


EXIT = """
    mov ebx, eax        ; exit code = eax
    mov eax, 1
    int 0x80
"""


class TestArithmeticPrograms:
    def test_sum_loop(self):
        interp = run_program(
            f"""
            _start:
                mov ecx, 100
                xor eax, eax
            top:
                add eax, ecx
                dec ecx
                jnz top
            {EXIT}
            """
        )
        assert interp.exit_code == 5050 & 0xFF

    def test_factorial_with_stack(self):
        interp = run_program(
            f"""
            _start:
                mov eax, 6
                call fact
            {EXIT}
            fact:
                cmp eax, 1
                jle base
                push eax
                dec eax
                call fact
                pop ecx
                imul eax, ecx
                ret
            base:
                mov eax, 1
                ret
            """
        )
        assert interp.exit_code == 720 % 256

    def test_fibonacci_iterative(self):
        interp = run_program(
            f"""
            _start:
                mov eax, 0
                mov ebx, 1
                mov ecx, 10
            fib:
                mov edx, eax
                add edx, ebx
                mov eax, ebx
                mov ebx, edx
                dec ecx
                jnz fib
            {EXIT}
            """
        )
        assert interp.exit_code == 55

    def test_division(self):
        interp = run_program(
            f"""
            _start:
                mov eax, 1000
                xor edx, edx
                mov ecx, 7
                div ecx
                ; eax = 142, edx = 6
                add eax, edx
            {EXIT}
            """
        )
        assert interp.exit_code == 148

    def test_signed_division(self):
        interp = run_program(
            f"""
            _start:
                mov eax, 0 - 100
                cdq
                mov ecx, 7
                idiv ecx
                neg eax            ; 14
            {EXIT}
            """
        )
        assert interp.exit_code == 14

    def test_shifts_and_logic(self):
        interp = run_program(
            f"""
            _start:
                mov eax, 1
                shl eax, 6          ; 64
                mov ecx, 2
                shr eax, ecx        ; 16
                or eax, 3           ; 19
                and eax, 0xFF
                xor eax, 1          ; 18
            {EXIT}
            """
        )
        assert interp.exit_code == 18


class TestMemoryPrograms:
    def test_array_sum(self):
        interp = run_program(
            f"""
            _start:
                xor eax, eax
                xor ecx, ecx
            top:
                add eax, [array + ecx*4]
                inc ecx
                cmp ecx, 5
                jne top
            {EXIT}
            .data
            array: dd 1, 2, 3, 4, 5
            """
        )
        assert interp.exit_code == 15

    def test_byte_access(self):
        interp = run_program(
            f"""
            _start:
                movzx eax, [bytes + 1]
                movsx ecx, [bytes + 2]
                add eax, ecx        ; 200 + (-1) = 199
            {EXIT}
            .data
            bytes: db 10, 200, 0xFF
            """
        )
        assert interp.exit_code == 199

    def test_store_and_reload(self):
        interp = run_program(
            f"""
            _start:
                mov [scratch], 0x1234
                mov eax, [scratch]
                movb [scratch], 0xFF
                movzx ecx, [scratch]
                sub eax, ecx        ; 0x1234 - 0xFF
                and eax, 0xFF
            {EXIT}
            .data
            scratch: dd 0
            """
        )
        assert interp.exit_code == (0x1234 - 0xFF) & 0xFF

    def test_stack_operations(self):
        interp = run_program(
            f"""
            _start:
                mov eax, 11
                mov ecx, 22
                push eax
                push ecx
                pop eax             ; 22
                pop ecx             ; 11
                sub eax, ecx        ; 11
            {EXIT}
            """
        )
        assert interp.exit_code == 11

    def test_xchg(self):
        interp = run_program(
            f"""
            _start:
                mov eax, 3
                mov ecx, 9
                xchg eax, ecx       ; eax=9 ecx=3
                sub eax, ecx        ; 6
            {EXIT}
            """
        )
        assert interp.exit_code == 6


class TestControlFlow:
    def test_indirect_jump_table(self):
        interp = run_program(
            f"""
            _start:
                mov eax, 1
                jmp [table + eax*4]
            case0:
                mov eax, 10
                jmp done
            case1:
                mov eax, 20
                jmp done
            done:
            {EXIT}
            .data
            table: dd case0, case1
            """
        )
        assert interp.exit_code == 20

    def test_call_through_register(self):
        interp = run_program(
            f"""
            _start:
                mov edx, fn
                call edx
            {EXIT}
            fn:
                mov eax, 77
                ret
            """
        )
        assert interp.exit_code == 77

    def test_ret_imm_pops_arguments(self):
        interp = run_program(
            f"""
            _start:
                mov esi, esp
                push 5
                push 6
                call fn
                sub esi, esp        ; stack balanced -> 0
                add eax, esi
            {EXIT}
            fn:
                mov eax, [esp + 4]  ; 6
                add eax, [esp + 8]  ; + 5
                ret 8
            """
        )
        assert interp.exit_code == 11

    def test_setcc(self):
        interp = run_program(
            f"""
            _start:
                mov ecx, 0
                cmp ecx, 1
                setl eax            ; 0 < 1 -> 1
                setg ecx            ; 0 > 1 -> 0... ecx low byte
                add eax, ecx
            {EXIT}
            """
        )
        assert interp.exit_code == 1

    def test_unsigned_vs_signed_branching(self):
        interp = run_program(
            f"""
            _start:
                mov eax, 0 - 1       ; 0xFFFFFFFF
                cmp eax, 1
                ja above             ; unsigned: taken
                mov eax, 0
                jmp done
            above:
                mov eax, 1
                cmp eax, 2
                jl less              ; signed: taken
                mov eax, 0
                jmp done
            less:
                mov eax, 42
            done:
            {EXIT}
            """
        )
        assert interp.exit_code == 42


class TestSyscallsAndIo:
    def test_hello_world(self):
        interp = run_program(
            """
            _start:
                mov eax, 4          ; SYS_write
                mov ebx, 1          ; stdout
                mov ecx, msg
                mov edx, 13
                int 0x80
                mov eax, 1
                mov ebx, 0
                int 0x80
            .data
            msg: db "Hello, world!"
            """
        )
        assert interp.syscalls.stdout_text == "Hello, world!"
        assert interp.exit_code == 0

    def test_echo_stdin(self):
        interp = run_program(
            """
            _start:
                mov eax, 3          ; SYS_read
                mov ebx, 0
                mov ecx, buf
                mov edx, 32
                int 0x80
                mov edx, eax        ; bytes read
                mov eax, 4
                mov ebx, 1
                int 0x80
                mov eax, 1
                mov ebx, 0
                int 0x80
            .data
            buf: dz 32
            """,
            stdin=b"ping",
        )
        assert interp.syscalls.stdout_text == "ping"

    def test_brk_heap_allocation(self):
        interp = run_program(
            f"""
            _start:
                mov eax, 45          ; SYS_brk query
                mov ebx, 0
                int 0x80
                mov esi, eax         ; current break
                mov ebx, eax
                add ebx, 0x1000
                mov eax, 45          ; grow
                int 0x80
                mov [esi], 1234      ; heap is writable
                mov eax, [esi]
                sub eax, 1234        ; 0
            {EXIT}
            """
        )
        assert interp.exit_code == 0


class TestFaults:
    def test_divide_by_zero(self):
        with pytest.raises(GuestFault):
            run_program("_start: xor ecx, ecx\nxor edx, edx\nmov eax, 1\ndiv ecx\nhlt\n")

    def test_unmapped_memory(self):
        with pytest.raises(GuestFault):
            run_program("_start: mov eax, [0x10]\nhlt\n")

    def test_runaway_loop_hits_budget(self):
        with pytest.raises(GuestFault):
            run_program("_start: jmp _start\n", max_instructions=1000)

    def test_bad_interrupt_vector(self):
        with pytest.raises(GuestFault):
            run_program("_start: int 0x21\nhlt\n")


class TestObserver:
    def test_observer_sees_accesses(self):
        events = []

        class Recorder(AccessObserver):
            def on_read(self, address, size):
                events.append(("r", size))

            def on_write(self, address, size):
                events.append(("w", size))

            def on_branch(self, instr, taken, target):
                events.append(("b", taken))

        program = assemble(
            """
            _start:
                mov eax, [data]
                mov [data], eax
                cmp eax, 0
                jne skip
            skip:
                hlt
            .data
            data: dd 7
            """
        )
        interp = GuestInterpreter.for_program(program, observer=Recorder())
        interp.run()
        assert ("r", 4) in events
        assert ("w", 4) in events
        assert ("b", True) in events

    def test_stats_counted(self):
        interp = run_program(
            f"""
            _start:
                mov ecx, 3
            top:
                dec ecx
                jnz top
            {EXIT}
            """
        )
        assert interp.stats["instructions"] > 5
        assert interp.stats["branches"] >= 3
        assert interp.stats["syscalls"] == 1

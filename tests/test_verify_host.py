"""Host-code verifier: generated blocks are clean, seeded breakage is caught."""

import pytest

from repro.dbt.block import ExitStub, TranslatedBlock
from repro.dbt.codegen import generate_block
from repro.dbt.frontend import build_ir
from repro.dbt.optimizer import optimize_block
from repro.dbt.optimizer.scheduler import schedule_block
from repro.guest.assembler import assemble
from repro.host.isa import ExitReason, HostInstr, HostOp, HostReg, nop
from repro.verify.findings import Severity, VerificationError
from repro.verify.hostverify import assert_host_ok, verify_host_block


def block_for(source: str, optimize: bool = True) -> TranslatedBlock:
    program = assemble(source)
    text = program.text

    def read(address, length):
        offset = address - text.address
        return text.data[offset : offset + length]

    ir = build_ir(read, program.entry)
    if optimize:
        optimize_block(ir)
    return generate_block(ir)


def codes(findings):
    return {f.code for f in findings}


def errors(findings):
    return {f.code for f in findings if f.severity is Severity.ERROR}


def minimal_block() -> TranslatedBlock:
    """A hand-built block: one exit stub jumping to guest 0x1234."""
    instrs = [
        HostInstr(HostOp.LUI, rt=HostReg.V0, imm=0),
        HostInstr(HostOp.ORI, rt=HostReg.V0, rs=HostReg.V0, imm=0x1234),
        HostInstr(HostOp.EXITB, imm=ExitReason.BRANCH),
    ]
    stubs = [ExitStub(offset_words=0, kind=ExitReason.BRANCH, guest_target=0x1234)]
    return TranslatedBlock(
        guest_address=0x1000,
        guest_length=2,
        guest_instr_count=1,
        instrs=instrs,
        exit_stubs=stubs,
    )


class TestCleanBlocks:
    def test_minimal_block_is_clean(self):
        assert errors(verify_host_block(minimal_block())) == set()

    def test_generated_block_is_clean(self):
        block = block_for("_start: add eax, ebx\ncmp eax, 100\njl out\nout: hlt\n")
        assert verify_host_block(block) == []

    def test_scheduled_block_is_clean(self):
        block = block_for("_start: mov eax, [0x8400000]\nadd eax, 3\nmov [0x8400000], eax\nhlt\n")
        pinned = [stub.offset_words for stub in block.exit_stubs]
        block.instrs = schedule_block(block.instrs, pinned=pinned)
        assert verify_host_block(block) == []


class TestSeededViolations:
    def test_read_of_unwritten_register(self):
        block = minimal_block()
        # $t3 is allocatable and never written in this block.
        block.instrs.insert(
            0, HostInstr(HostOp.ADDU, rd=HostReg.A0, rs=HostReg.T3, rt=HostReg.S0)
        )
        for stub in block.exit_stubs:
            stub.offset_words += 1
        findings = verify_host_block(block)
        assert "read-of-unwritten" in codes(findings)
        bad = next(f for f in findings if f.code == "read-of-unwritten")
        assert "t3" in bad.message

    def test_guest_homes_are_live_in(self):
        block = minimal_block()
        # Reading $s0..$s7 (guest registers) without a write is fine.
        block.instrs.insert(
            0, HostInstr(HostOp.ADDU, rd=HostReg.A0, rs=HostReg.S3, rt=HostReg.S0)
        )
        for stub in block.exit_stubs:
            stub.offset_words += 1
        assert errors(verify_host_block(block)) == set()

    def test_reserved_register_write(self):
        block = minimal_block()
        block.instrs.insert(0, HostInstr(HostOp.ADDIU, rt=HostReg.SP, rs=HostReg.SP, imm=-8))
        for stub in block.exit_stubs:
            stub.offset_words += 1
        found = codes(verify_host_block(block))
        assert "reserved-reg-write" in found
        assert "reserved-reg-read" in found

    def test_branch_out_of_range(self):
        block = minimal_block()
        block.instrs.insert(0, HostInstr(HostOp.BEQ, rs=HostReg.S0, rt=HostReg.S1, imm=99))
        for stub in block.exit_stubs:
            stub.offset_words += 1
        assert "branch-out-of-range" in codes(verify_host_block(block))

    def test_bad_chain_patch_site(self):
        block = minimal_block()
        # Slide the stub record back one word: its patch site now points
        # at the ORI, not the EXITB — chaining would clobber value setup.
        block.instrs.insert(0, nop())
        # (correct record would be offset_words=1; leave it at 0)
        findings = verify_host_block(block)
        assert "bad-chain-patch-site" in codes(findings)
        # ...and the EXITB itself is now unaccounted for.
        assert "unrecorded-exit" in codes(findings)

    def test_shared_patch_site(self):
        block = minimal_block()
        block.exit_stubs.append(
            ExitStub(offset_words=0, kind=ExitReason.BRANCH, guest_target=0x5678)
        )
        assert "bad-chain-patch-site" in codes(verify_host_block(block))

    def test_stub_must_materialize_v0(self):
        block = minimal_block()
        block.instrs[0] = HostInstr(HostOp.LUI, rt=HostReg.A0, imm=0)  # wrong register
        assert "bad-stub-shape" in codes(verify_host_block(block))

    def test_falls_off_end(self):
        block = minimal_block()
        block.instrs = [HostInstr(HostOp.ADDIU, rt=HostReg.A0, rs=HostReg.ZERO, imm=1)]
        block.exit_stubs = []
        assert "falls-off-end" in codes(verify_host_block(block))

    def test_unreachable_code_after_exit(self):
        block = minimal_block()
        block.instrs.append(HostInstr(HostOp.ADDIU, rt=HostReg.A0, rs=HostReg.ZERO, imm=1))
        findings = verify_host_block(block)
        warning = next(f for f in findings if f.code == "unreachable-code")
        assert warning.severity is Severity.WARNING
        assert errors(findings) == set()  # warnings don't fail checked mode

    def test_empty_block(self):
        block = minimal_block()
        block.instrs = []
        assert "empty-block" in codes(verify_host_block(block))

    def test_assert_raises_with_stage(self):
        block = minimal_block()
        block.instrs = [HostInstr(HostOp.ADDIU, rt=HostReg.A0, rs=HostReg.ZERO, imm=1)]
        block.exit_stubs = []
        with pytest.raises(VerificationError) as excinfo:
            assert_host_ok(block, stage="scheduler")
        assert excinfo.value.stage == "scheduler"

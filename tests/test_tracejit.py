"""Trace JIT: superblock closures must be invisible to the timing model.

The contract (see ``repro.guest.tracejit``): with the trace tier on,
every :class:`~repro.vm.timing.TimingVM` run — cycles, architectural
state, stats, metrics that feed results, fault behaviour — is
bit-identical to the same run with traces off.  These tests drive that
contract with the trace-biased :mod:`tests.blockgen` profile (computed
jumps, interior branches, mid-run self-modifying stores), plus targeted
tests for the knobs, the shared-space pack format, mid-trace faults,
and the jitverify trace lint's planted-bug attribution.
"""

import dataclasses
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests import blockgen
from repro.guest.assembler import assemble
from repro.guest.interpreter import GuestFault
from repro.guest.tracejit import (
    DEFAULT_TRACE_THRESHOLD,
    pack_trace_space,
    trace_jit_enabled_by_env,
    trace_threshold_from_env,
    unpack_trace_space,
)
from repro.dbt.transcache import TranslationCache
from repro.morph.config import PRESETS
from repro.vm.timing import (
    CHAIN_STREAK_THRESHOLD,
    TimingVM,
    chain_streak_from_env,
    run_timing,
)

DATA_DIR = Path(__file__).parent / "data"
#: Written (shrunk) whenever the hypothesis differential below fails;
#: rename to ``tracejit_regression_<what>.asm`` when committing one as
#: a permanent regression.
COUNTEREXAMPLE = DATA_DIR / "tracejit_counterexample_latest.asm"

_CONFIG = PRESETS["speculative_4"]

#: A loop guaranteed to form a multi-block loop trace at the default
#: thresholds: a computed jump into the second block and a conditional
#: back-edge, hot for 60 iterations.
TRACED_LOOP = """
_start:
    mov ecx, 60
head:
    add eax, 3
    xor eax, ecx
    mov esi, b1
    jmp esi
b1:
    add ebx, eax
    sub ecx, 1
    jnz head
    mov eax, 1
    and ebx, 255
    int 0x80
buf:
    dz 64
"""


def _result_dict(program, **kwargs):
    return dataclasses.asdict(run_timing(program, _CONFIG, jit=True, **kwargs))


def _differential(source):
    program = assemble(source)
    off = _result_dict(program, trace_jit=False)
    on = _result_dict(program, trace_jit=True)
    assert on == off, "trace tier changed observable results\n%s" % source


class TestKnobs:
    def test_env_enable_flag(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACEJIT", raising=False)
        assert trace_jit_enabled_by_env() is True
        monkeypatch.setenv("REPRO_TRACEJIT", "0")
        assert trace_jit_enabled_by_env() is False
        monkeypatch.setenv("REPRO_TRACEJIT", "off")
        assert trace_jit_enabled_by_env() is False

    def test_env_threshold(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_THRESHOLD", raising=False)
        assert trace_threshold_from_env() == DEFAULT_TRACE_THRESHOLD
        monkeypatch.setenv("REPRO_TRACE_THRESHOLD", "3")
        assert trace_threshold_from_env() == 3
        monkeypatch.setenv("REPRO_TRACE_THRESHOLD", "0")
        assert trace_threshold_from_env() == 1  # clamped

    def test_env_chain_streak(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAIN_STREAK", raising=False)
        assert chain_streak_from_env() == CHAIN_STREAK_THRESHOLD
        monkeypatch.setenv("REPRO_CHAIN_STREAK", "2")
        assert chain_streak_from_env() == 2

    def test_vm_honours_trace_jit_override(self):
        program = assemble(TRACED_LOOP)
        vm = TimingVM(program, _CONFIG, jit=True, trace_jit=False)
        vm.run()
        assert vm._tracejit is None
        vm = TimingVM(program, _CONFIG, jit=True, trace_jit=True)
        vm.run()
        assert vm._tracejit is not None
        assert vm.jit_metrics["trace.installs"] >= 1


class TestTraceDifferential:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_trace_programs_bit_identical(self, seed):
        _differential(blockgen.random_trace_program(seed))

    def test_traced_loop_installs_and_matches(self):
        program = assemble(TRACED_LOOP)
        off = _result_dict(program, trace_jit=False)
        vm = TimingVM(program, _CONFIG, jit=True, trace_jit=True)
        on = dataclasses.asdict(vm.run())
        assert on == off
        # the loop really became one closure: a multi-block loop trace
        # installed and ran to the budget or the final guard miss
        assert vm.jit_metrics["trace.installs"] >= 1
        entry = next(iter(vm._tracejit.entries.values()))
        assert entry.loop and entry.blocks >= 2

    def test_emitter_temps_do_not_clobber_trace_locals(self):
        # imul's emitter uses the most helper temporaries of any
        # instruction; one of them (`_sb`) once collided with a trace
        # header local and turned the stats-bump callable into an int
        source = TRACED_LOOP.replace("add ebx, eax", "imul ebx, eax")
        program = assemble(source)
        off = _result_dict(program, trace_jit=False)
        vm = TimingVM(program, _CONFIG, jit=True, trace_jit=True)
        on = dataclasses.asdict(vm.run())
        assert on == off
        assert vm.jit_metrics["trace.installs"] >= 1

    def test_smc_patch_invalidates_traces(self):
        # seeds whose generated program patches its own loop body: the
        # trace over the old bytes must be torn down and the run must
        # still match the trace-off timing bit for bit
        patched = [
            seed for seed in range(12)
            if "movb [head + 2], 9" in blockgen.random_trace_program(seed)
        ]
        assert patched, "no SMC seed in range — regenerate the profile"
        for seed in patched[:2]:
            source = blockgen.random_trace_program(seed)
            program = assemble(source)
            off = _result_dict(program, trace_jit=False)
            vm = TimingVM(program, _CONFIG, jit=True, trace_jit=True)
            on = dataclasses.asdict(vm.run())
            assert on == off, source
            assert vm.jit_metrics["trace.invalidations"] >= 1, source


FAULTING_TRACE = """
_start:
    mov ecx, 40
    mov edx, 0
head:
    add eax, 3
    mov esi, b1
    jmp esi
b1:
    mov ebx, [buf + edx]
    add edx, 4096
    sub ecx, 1
    jnz head
    mov eax, 1
    int 0x80
buf:
    dz 64
"""


class TestMidTraceFault:
    def test_fault_spills_state_and_matches_stepping(self):
        # the load walks off the mapped data pages mid-run — after the
        # trace has formed — so the fault is raised from inside the
        # closure's guest body; the spill-on-fault path must leave the
        # VM in exactly the state the stepping path leaves it in
        program = assemble(FAULTING_TRACE)

        def run(trace_jit):
            vm = TimingVM(program, _CONFIG, jit=True, trace_jit=trace_jit)
            with pytest.raises(GuestFault) as excinfo:
                vm.run()
            return vm, excinfo.value

        vm_off, fault_off = run(False)
        vm_on, fault_on = run(True)
        assert fault_on.args == fault_off.args
        assert vm_on.now == vm_off.now
        assert vm_on.interp.state.snapshot() == vm_off.interp.state.snapshot()
        assert vm_on.stats.as_dict() == vm_off.stats.as_dict()


class TestSharedSpacePack:
    def _run_with_cache(self, program, cache):
        vm = TimingVM(
            program, _CONFIG, jit=True, trace_jit=True,
            translation_cache=cache, program_key="traced-loop",
        )
        result = dataclasses.asdict(vm.run())
        return result, vm

    def test_pack_roundtrip_is_executable(self):
        program = assemble(TRACED_LOOP)
        first_cache = TranslationCache()
        first, first_vm = self._run_with_cache(program, first_cache)
        space = first_cache.trace_space("traced-loop")
        assert space, "no traces published to the shared space"

        rebuilt = unpack_trace_space(pack_trace_space(space))
        assert set(rebuilt) == {
            key for key, value in space.items()
            if value is not None
        }
        second_cache = TranslationCache()
        second_cache.trace_space("traced-loop").update(rebuilt)
        second, second_vm = self._run_with_cache(program, second_cache)
        assert second == first
        # the sibling adopted the packed compile instead of recompiling
        assert second_vm.jit_metrics["trace.shared_hits"] >= 1
        assert second_vm.jit_metrics["trace.compiles"] == 0

    def test_format_mismatch_degrades_to_recompile(self):
        import pickle

        blob = pickle.dumps((999, []), protocol=pickle.HIGHEST_PROTOCOL)
        assert unpack_trace_space(blob) == {}


class TestPlantedBugs:
    """The jitverify trace lint must attribute deliberate breakage."""

    def _installed_trace(self):
        program = assemble(TRACED_LOOP)
        vm = TimingVM(program, _CONFIG, jit=True, trace_jit=True)
        vm.run()
        entries = vm._tracejit.entries
        assert entries, "no trace installed"
        entry = next(iter(entries.values()))
        block_instrs = [
            [item[1] for item in vm.interp._build_block_plan(pc, count)]
            for pc, count, _expect in entry.shape
        ]
        return entry, block_instrs

    def _codes(self, source, block_instrs=None):
        from repro.verify.jitverify import lint_trace_source

        return [code for code, _message in
                lint_trace_source(source, block_instrs)]

    def test_clean_trace_has_no_defects(self):
        entry, block_instrs = self._installed_trace()
        assert self._codes(entry.source, block_instrs) == []

    def test_dropped_entry_guard_is_flagged(self):
        entry, _ = self._installed_trace()
        lines = [line for line in entry.source.splitlines()
                 if "S.eip !=" not in line or "return None" not in line]
        assert "trace-missing-entry-guard" in self._codes("\n".join(lines))

    def test_dropped_generation_guard_is_flagged(self):
        entry, _ = self._installed_trace()
        lines = [line for line in entry.source.splitlines()
                 if "code_writes" not in line]
        assert "trace-missing-generation-guard" in self._codes("\n".join(lines))

    def test_dropped_spill_is_flagged(self):
        entry, _ = self._installed_trace()
        source = entry.source
        spills = [line for line in source.splitlines()
                  if line.strip().startswith("R[") and "= r" in line]
        assert spills, "trace spills no registers — pick a busier program"
        mutated = source.replace(spills[0] + "\n", "", 1)
        assert mutated != source
        assert "trace-spill-mismatch" in self._codes(mutated)

    def test_dropped_metrics_flush_is_flagged(self):
        entry, _ = self._installed_trace()
        mutated = "\n".join(
            line for line in entry.source.splitlines()
            if line.strip() != "PI(_pn)"
        )
        assert "trace-missing-flush" in self._codes(mutated)

    def test_dropped_stats_accumulator_is_flagged(self):
        entry, block_instrs = self._installed_trace()
        source = entry.source
        bump = next(line for line in source.splitlines()
                    if "_st_instructions +=" in line)
        mutated = source.replace(bump + "\n", "", 1)
        assert "trace-stats-mismatch" in self._codes(mutated, block_instrs)

    def test_dropped_exit_stats_flush_is_flagged(self):
        entry, _ = self._installed_trace()
        mutated = "\n".join(
            line for line in entry.source.splitlines()
            if "SB('instructions'" not in line
        )
        assert "trace-missing-flush" in self._codes(mutated)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_trace_profile_differential(seed):
    source = blockgen.random_trace_program(seed)
    try:
        _differential(source)
    except AssertionError:
        COUNTEREXAMPLE.write_text(source)
        raise


def _regressions():
    return sorted(DATA_DIR.glob("tracejit_regression_*.asm"))


@pytest.mark.parametrize(
    "path", _regressions() or [None], ids=lambda p: p.name if p else "none"
)
def test_persisted_counterexamples_stay_fixed(path):
    if path is None:
        pytest.skip("no persisted tracejit regressions")
    _differential(path.read_text())

"""Property tests for the verification subsystem (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.guest.assembler import assemble
from repro.verify.guestlint import lint_bytes
from repro.verify.pipeline import checked_translate_program
from repro.workloads.builder import FarmConfig, build_farm


@settings(max_examples=100, deadline=None)
@given(st.binary(max_size=64), st.integers(min_value=0, max_value=63))
def test_guestlint_total_on_arbitrary_bytes(data, entry_offset):
    """The linter never raises, whatever bytes it is pointed at."""
    report = lint_bytes(data, base=0x1000, entry=0x1000 + entry_offset)
    assert report.reachable_instructions >= 0


@settings(max_examples=50, deadline=None)
@given(st.binary(min_size=1, max_size=32))
def test_guestlint_total_with_default_entry(data):
    lint_bytes(data)


@st.composite
def farm_configs(draw):
    return FarmConfig(
        functions=draw(st.integers(min_value=1, max_value=6)),
        body_instructions=draw(st.integers(min_value=2, max_value=24)),
        data_words=64,
        memory_op_rate=draw(st.floats(min_value=0.0, max_value=1.0)),
        branch_rate=draw(st.floats(min_value=0.0, max_value=1.0)),
        indirect_call_rate=draw(st.floats(min_value=0.0, max_value=1.0)),
        sequence_length=draw(st.integers(min_value=1, max_value=12)),
        seed=draw(st.integers(min_value=0, max_value=2**31 - 1)),
    )


def assemble_farm(config: FarmConfig):
    farm = build_farm(config)
    lines = ["_start:", "    xor esi, esi", f"    call {farm.sweep_label}", "    hlt"]
    lines += farm.text_lines
    lines.append(".data")
    lines += farm.data_lines
    return assemble("\n".join(lines) + "\n")


@settings(max_examples=25, deadline=None)
@given(farm_configs())
def test_random_farm_programs_translate_verifier_clean(config):
    """Every pass of every block of a random DSL program stays clean.

    This is the strongest regression net over the optimizer: any pass
    change that breaks SSA, operand arity or flag soundness on *some*
    generated program shape fails here with the pass named.
    """
    program = assemble_farm(config)
    sweep = checked_translate_program(program)
    assert sweep.block_count > 0
    assert sweep.faults == []


@settings(max_examples=10, deadline=None)
@given(farm_configs())
def test_random_farm_programs_lint_without_errors(config):
    from repro.verify.guestlint import lint_program

    report = lint_program(assemble_farm(config))
    assert report.errors == []

"""Tests for multi-VM fabric sharing (the Section 5 'virtual x86 SMP')."""

import pytest

from repro.guest.assembler import assemble
from repro.guest.interpreter import GuestInterpreter
from repro.vm.multivm import MultiVmResult, SharedFabric
from repro.workloads import build_workload

#: An I/O-bound guest: alternates bursts of arithmetic with system
#: calls (SYS_times), each of which blocks the VM on simulated I/O.
IO_HEAVY = """
_start:
    mov edi, 12          ; I/O operations to perform
io_loop:
    mov ecx, 40          ; small compute burst
burst:
    add esi, ecx
    dec ecx
    jnz burst
    mov eax, 43          ; SYS_times: proxied off-fabric
    int 0x80
    dec edi
    jnz io_loop
    mov eax, esi
    and eax, 255
    mov ebx, eax
    mov eax, 1
    int 0x80
"""


def _io_program():
    program = assemble(IO_HEAVY)
    program.name = "io_heavy"
    return program


def _compute_program():
    return build_workload("176.gcc", scale=0.4)


class TestSharedFabric:
    def test_needs_two_guests(self):
        with pytest.raises(ValueError):
            SharedFabric([_io_program()])

    def test_pool_must_cover_minimums(self):
        with pytest.raises(ValueError):
            SharedFabric([_io_program(), _io_program()], slave_pool=1)

    def test_both_guests_complete_correctly(self):
        golden_io = GuestInterpreter.for_program(_io_program()).run()

        fabric = SharedFabric([_io_program(), _compute_program()], dynamic=True)
        result = fabric.run()
        assert isinstance(result, MultiVmResult)
        assert result.per_vm[0].exit_code == golden_io
        golden_compute = GuestInterpreter.for_program(_compute_program()).run(3_000_000)
        assert result.per_vm[1].exit_code == golden_compute

    def test_io_stalls_are_charged(self):
        fabric = SharedFabric([_io_program(), _io_program()], dynamic=False)
        result = fabric.run()
        assert fabric.stats["io_stalls"] >= 22  # ~12 per guest, minus exits
        # the makespan includes the serialized stalls
        assert result.makespan > 12 * fabric.io_stall_cycles

    def test_dynamic_sharing_reallocates(self):
        fabric = SharedFabric([_io_program(), _compute_program()], dynamic=True)
        result = fabric.run()
        assert result.reallocations >= 2

    def test_static_sharing_never_reallocates(self):
        fabric = SharedFabric([_io_program(), _compute_program()], dynamic=False)
        result = fabric.run()
        assert result.reallocations == 0

    def test_dynamic_beats_static_on_mixed_pair(self):
        """The paper's claim: shrinking the I/O-stalled VM and growing
        the compute-bound one raises fabric utilization."""
        static = SharedFabric(
            [_io_program(), _compute_program()], dynamic=False
        ).run()
        dynamic = SharedFabric(
            [_io_program(), _compute_program()], dynamic=True
        ).run()
        assert dynamic.makespan <= static.makespan

    def test_interleaving_is_time_ordered(self):
        fabric = SharedFabric([_io_program(), _io_program()], dynamic=True)
        result = fabric.run()
        # both VMs advanced; neither starved
        assert all(r.cycles > 0 for r in result.per_vm)
        assert result.total_guest_instructions > 1000

"""Persistent run-cache tests: round trip, invalidation, key identity."""

import dataclasses

import pytest

from repro.harness import runner
from repro.harness.diskcache import (
    DiskCache,
    code_version_stamp,
    config_digest,
    result_from_dict,
    result_to_dict,
)
from repro.harness.runner import clear_cache, configure_disk_cache, run_one
from repro.morph.config import PRESETS

SCALE = 0.15
WORKLOAD = "164.gzip"
CONFIG = "speculative_4"


@pytest.fixture()
def cache_dir(tmp_path):
    """Route the harness disk cache into a throwaway directory."""
    configure_disk_cache(enabled=True, root=tmp_path)
    clear_cache()
    yield tmp_path
    configure_disk_cache(enabled=False)
    clear_cache()


@pytest.fixture()
def no_disk():
    configure_disk_cache(enabled=False)
    clear_cache()
    yield
    configure_disk_cache(enabled=False)
    clear_cache()


class TestDiskCacheUnit:
    def test_round_trip_preserves_result(self, tmp_path, no_disk):
        result = run_one(WORKLOAD, CONFIG, SCALE)
        cache = DiskCache(tmp_path, version="test")
        cache.store(WORKLOAD, PRESETS[CONFIG], SCALE, result)
        loaded = cache.load(WORKLOAD, PRESETS[CONFIG], SCALE)
        assert loaded is not None
        assert loaded.cycles == result.cycles
        assert loaded.piii_cycles == result.piii_cycles
        assert loaded.guest_instructions == result.guest_instructions
        assert loaded.stats == result.stats
        assert loaded.slowdown == result.slowdown
        assert cache.stats()["hits"] == 1

    def test_version_stamp_invalidates(self, tmp_path, no_disk):
        result = run_one(WORKLOAD, CONFIG, SCALE)
        old = DiskCache(tmp_path, version="revision-a")
        old.store(WORKLOAD, PRESETS[CONFIG], SCALE, result)
        new = DiskCache(tmp_path, version="revision-b")
        assert new.load(WORKLOAD, PRESETS[CONFIG], SCALE) is None
        assert new.stats()["misses"] == 1
        # the old revision's entry is untouched, just never read
        assert old.load(WORKLOAD, PRESETS[CONFIG], SCALE) is not None

    def test_mutated_config_does_not_alias_preset(self, tmp_path, no_disk):
        """A config sharing a preset's *name* must not share its cache key."""
        preset = PRESETS[CONFIG]
        mutated = preset.with_(l15_banks=0)
        assert mutated.name == preset.name
        assert config_digest(mutated) != config_digest(preset)
        result = run_one(WORKLOAD, CONFIG, SCALE)
        cache = DiskCache(tmp_path, version="test")
        cache.store(WORKLOAD, preset, SCALE, result)
        assert cache.load(WORKLOAD, mutated, SCALE) is None

    def test_scale_and_workload_distinguish_cells(self, tmp_path, no_disk):
        result = run_one(WORKLOAD, CONFIG, SCALE)
        cache = DiskCache(tmp_path, version="test")
        cache.store(WORKLOAD, PRESETS[CONFIG], SCALE, result)
        assert cache.load(WORKLOAD, PRESETS[CONFIG], SCALE + 0.05) is None
        assert cache.load("181.mcf", PRESETS[CONFIG], SCALE) is None

    def test_serialization_is_plain_json_data(self, no_disk):
        result = run_one(WORKLOAD, CONFIG, SCALE)
        doc = result_to_dict(result)
        rebuilt = result_from_dict(doc)
        assert dataclasses.asdict(rebuilt) == doc

    def test_code_version_stamp_is_stable(self):
        assert code_version_stamp() == code_version_stamp()
        assert len(code_version_stamp()) == 16


class TestReaderStampVerification:
    """The diskcache-stamp-match invariant: a document at the cell path
    is only served if every stamp field matches the request — foreign,
    torn or relocated files degrade to misses, never wrong results."""

    def _cell_path(self, cache):
        return cache._path(cache.cell_key(WORKLOAD, PRESETS[CONFIG], SCALE))

    def _seeded_cache(self, tmp_path, no_disk):
        result = run_one(WORKLOAD, CONFIG, SCALE)
        cache = DiskCache(tmp_path, version="test")
        cache.store(WORKLOAD, PRESETS[CONFIG], SCALE, result)
        return cache

    def _corrupt(self, cache, **overrides):
        import json

        path = self._cell_path(cache)
        doc = json.loads(path.read_text())
        doc.update(overrides)
        path.write_text(json.dumps(doc))

    def test_wrong_workload_stamp_is_a_miss(self, tmp_path, no_disk):
        cache = self._seeded_cache(tmp_path, no_disk)
        self._corrupt(cache, workload="181.mcf")
        assert cache.load(WORKLOAD, PRESETS[CONFIG], SCALE) is None
        assert cache.stats()["misses"] == 1

    def test_wrong_scale_stamp_is_a_miss(self, tmp_path, no_disk):
        cache = self._seeded_cache(tmp_path, no_disk)
        self._corrupt(cache, scale=SCALE * 2)
        assert cache.load(WORKLOAD, PRESETS[CONFIG], SCALE) is None

    def test_wrong_version_stamp_is_a_miss(self, tmp_path, no_disk):
        cache = self._seeded_cache(tmp_path, no_disk)
        self._corrupt(cache, version="other-revision")
        assert cache.load(WORKLOAD, PRESETS[CONFIG], SCALE) is None

    def test_wrong_format_stamp_is_a_miss(self, tmp_path, no_disk):
        cache = self._seeded_cache(tmp_path, no_disk)
        self._corrupt(cache, format=999)
        assert cache.load(WORKLOAD, PRESETS[CONFIG], SCALE) is None

    def test_mismatched_config_stamp_is_a_miss(self, tmp_path, no_disk):
        cache = self._seeded_cache(tmp_path, no_disk)
        mutated = dataclasses.asdict(PRESETS[CONFIG].with_(l15_banks=0))
        self._corrupt(cache, config=mutated)
        assert cache.load(WORKLOAD, PRESETS[CONFIG], SCALE) is None

    def test_torn_json_is_a_miss(self, tmp_path, no_disk):
        cache = self._seeded_cache(tmp_path, no_disk)
        path = self._cell_path(cache)
        path.write_text(path.read_text()[: path.stat().st_size // 2])
        assert cache.load(WORKLOAD, PRESETS[CONFIG], SCALE) is None

    def test_non_dict_document_is_a_miss(self, tmp_path, no_disk):
        cache = self._seeded_cache(tmp_path, no_disk)
        self._cell_path(cache).write_text('["not", "a", "cell"]')
        assert cache.load(WORKLOAD, PRESETS[CONFIG], SCALE) is None

    def test_intact_document_still_hits(self, tmp_path, no_disk):
        cache = self._seeded_cache(tmp_path, no_disk)
        assert cache.load(WORKLOAD, PRESETS[CONFIG], SCALE) is not None
        assert cache.stats()["hits"] == 1


class TestHarnessIntegration:
    def test_warm_rerun_served_from_disk(self, cache_dir):
        first = run_one(WORKLOAD, CONFIG, SCALE)
        clear_cache()  # drop the in-process memo; disk survives
        # if the disk hit path were broken this would re-simulate; make
        # that impossible by breaking the simulator entry point
        original = runner.run_timing
        runner.run_timing = None  # type: ignore[assignment]
        try:
            second = run_one(WORKLOAD, CONFIG, SCALE)
        finally:
            runner.run_timing = original
        assert second.cycles == first.cycles
        assert second.stats == first.stats

    def test_memo_key_includes_config_identity(self, cache_dir):
        preset_result = run_one(WORKLOAD, CONFIG, SCALE)
        mutated = PRESETS[CONFIG].with_(l15_banks=0, hardware_icache=True)
        mutated_result = run_one(WORKLOAD, mutated, SCALE)
        assert mutated_result is not preset_result
        assert mutated_result.cycles != preset_result.cycles
        # and the preset's memo entry is still intact
        assert run_one(WORKLOAD, CONFIG, SCALE) is preset_result

    def test_disk_cache_stats_reported(self, cache_dir):
        run_one(WORKLOAD, CONFIG, SCALE)
        clear_cache()
        run_one(WORKLOAD, CONFIG, SCALE)
        stats = runner.cache_stats()
        assert stats["disk"]["stores"] >= 1
        assert stats["disk"]["hits"] >= 1

"""Tests for the tiled machine, network, resources and data caches."""

import pytest

from repro.tiled.datacache import DataCacheModel
from repro.tiled.machine import TileGrid, TileRole, default_placement
from repro.tiled.network import Network
from repro.tiled.resource import Resource


class TestTileGrid:
    def test_default_grid_is_4x4(self):
        grid = TileGrid()
        assert grid.tile_count == 16
        assert len(grid.coords()) == 16

    def test_hops_is_manhattan(self):
        grid = TileGrid()
        assert grid.hops((0, 0), (3, 3)) == 6
        assert grid.hops((1, 1), (1, 1)) == 0
        assert grid.hops((2, 0), (0, 1)) == 3

    def test_assign_and_query_roles(self):
        grid = TileGrid()
        grid.assign((0, 0), TileRole.MANAGER)
        assert grid.find_one(TileRole.MANAGER) == (0, 0)
        assert grid.tiles_with_role(TileRole.IDLE) != []

    def test_assign_outside_grid_rejected(self):
        with pytest.raises(ValueError):
            TileGrid().assign((9, 9), TileRole.MMU)


class TestDefaultPlacement:
    def test_figure3_roles_present(self):
        grid = default_placement(translator_tiles=6, l2_bank_tiles=4)
        summary = grid.role_summary()
        assert summary["execution"] == 1
        assert summary["mmu"] == 1
        assert summary["manager"] == 1
        assert summary["syscall"] == 1
        assert summary["l15_bank"] == 2
        assert summary["translator"] == 6
        assert summary["l2_bank"] == 4

    def test_nine_translator_config_fits(self):
        grid = default_placement(translator_tiles=9, l2_bank_tiles=1)
        assert len(grid.tiles_with_role(TileRole.TRANSLATOR)) == 9

    def test_mmu_is_adjacent_to_execution(self):
        grid = default_placement(6, 4)
        execution = grid.find_one(TileRole.EXECUTION)
        mmu = grid.find_one(TileRole.MMU)
        assert grid.hops(execution, mmu) == 1

    def test_banks_placed_near_mmu(self):
        grid = default_placement(6, 4)
        mmu = grid.find_one(TileRole.MMU)
        for bank in grid.tiles_with_role(TileRole.L2_BANK):
            assert grid.hops(mmu, bank) <= 3

    def test_overcommit_rejected(self):
        with pytest.raises(ValueError):
            default_placement(translator_tiles=9, l2_bank_tiles=4)


class TestNetwork:
    def test_latency_grows_with_hops(self):
        net = Network()
        assert net.latency(0) < net.latency(1) < net.latency(4)

    def test_payload_serialization(self):
        net = Network()
        assert net.latency(2, payload_words=10) == net.latency(2, payload_words=1) + 9

    def test_round_trip(self):
        net = Network()
        assert net.round_trip(2) == 2 * net.latency(2)


class TestResource:
    def test_idle_resource_services_immediately(self):
        res = Resource("r")
        assert res.service(now=100, occupancy=10) == 110

    def test_contention_queues_fcfs(self):
        res = Resource("r")
        first = res.service(now=0, occupancy=50)
        second = res.service(now=10, occupancy=50)
        assert first == 50
        assert second == 100  # waited for the first

    def test_gap_resets_start(self):
        res = Resource("r")
        res.service(now=0, occupancy=10)
        assert res.service(now=1000, occupancy=10) == 1010

    def test_utilization(self):
        res = Resource("r")
        res.service(0, 25)
        assert res.utilization(100) == 0.25

    def test_reset(self):
        res = Resource("r")
        res.service(0, 1000)
        res.reset(now=5)
        assert res.service(5, 10) == 15


class TestDataCacheModel:
    def test_miss_then_hit(self):
        cache = DataCacheModel("c", size_bytes=1024)
        assert not cache.access(0x100, False).hit
        assert cache.access(0x100, False).hit
        assert cache.miss_rate == 0.5

    def test_writeback_on_dirty_eviction(self):
        cache = DataCacheModel("c", size_bytes=128, line_bytes=32, ways=1)
        cache.access(0x00, True)  # dirty
        result = cache.access(0x80, False)  # conflicts in set 0
        assert result.writeback

    def test_flush_counts_dirty_lines(self):
        cache = DataCacheModel("c", size_bytes=1024)
        cache.access(0x00, True)
        cache.access(0x40, True)
        cache.access(0x80, False)
        assert cache.flush() == 2
        assert not cache.access(0x00, False).hit  # cold again

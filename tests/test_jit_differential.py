"""Full-suite differential: the block JIT must be invisible in results.

The JIT is a wall-clock optimization only — every ``TimingRunResult``
field (cycle counts, cache stats, guest stats, morph events, exit
codes) must be bit-identical with the JIT on and off, across every
workload of the suite.  These tests run the whole grid row at small
scale and compare full ``dataclasses.asdict`` dumps, which is the same
equality the figure renderers and the disk cache rely on.
"""

import dataclasses

import pytest

from repro.dbt.transcache import TranslationCache
from repro.morph.config import PRESETS
from repro.vm.timing import TimingVM, run_timing
from repro.workloads import SPECINT_NAMES, build_workload

SCALE = 0.05


def _doc(result):
    return dataclasses.asdict(result)


class TestSuiteBitIdentity:
    @pytest.mark.parametrize("workload", SPECINT_NAMES)
    def test_jit_matches_interpreter(self, workload):
        program = build_workload(workload, scale=SCALE)
        config = PRESETS["speculative_4"]
        off = run_timing(program, config, jit=False)
        on = run_timing(program, config, jit=True)
        assert _doc(on) == _doc(off), f"{workload}: JIT changed the results"

    def test_jit_matches_interpreter_when_morphing(self):
        # reconfiguration interacts with the dispatch loop (stall
        # accounting, metrics sampling cadence): cover a morphing preset
        program = build_workload("164.gzip", scale=SCALE)
        config = PRESETS["morph_threshold_5"]
        off = run_timing(program, config, jit=False)
        on = run_timing(program, config, jit=True)
        assert _doc(on) == _doc(off)

    def test_shared_cache_and_cold_agree(self):
        # a JIT run adopting a sibling's compiled blocks must be
        # bit-identical to a cold JIT run and to the interpreter
        program = build_workload("186.crafty", scale=SCALE)
        config = PRESETS["speculative_4"]
        cache = TranslationCache()
        first = run_timing(
            program, config, translation_cache=cache, program_key="k", jit=True
        )
        warm = run_timing(
            program, config, translation_cache=cache, program_key="k", jit=True
        )
        cold = run_timing(program, config, jit=True)
        off = run_timing(program, config, jit=False)
        assert _doc(first) == _doc(warm) == _doc(cold) == _doc(off)


class TestRunVersusStep:
    def test_run_fast_loop_matches_step_loop(self):
        # TimingVM.run's lean dispatch loop vs the public stepping API
        program = build_workload("197.parser", scale=SCALE)
        config = PRESETS["speculative_4"]
        fast = run_timing(program, config, jit=True)
        vm = TimingVM(program, config, jit=True)
        vm.start()
        while vm.step():
            pass
        stepped = vm._result(vm._executed_instructions)
        assert _doc(fast) == _doc(stepped)

"""Event tracing: ordering, ring-buffer overflow, and the null sink."""

from pathlib import Path

from repro.guest.assembler import assemble
from repro.morph.config import PRESETS
from repro.obs.events import NULL_TRACER, NullTracer, TraceEvent, Tracer, events_by_tile
from repro.vm.timing import TimingVM

DATA_DIR = Path(__file__).parent / "data"


def _trace_program():
    source = (DATA_DIR / "trace_workload.asm").read_text()
    return assemble(source, name="trace_workload")


class TestTracer:
    def test_events_keep_emission_order(self):
        tracer = Tracer(capacity=16)
        tracer.emit(5, "specq", "enqueue", "manager", pc=0x100)
        tracer.emit(3, "translate", "start", "slave0", pc=0x100)
        tracer.emit(9, "translate", "end", "slave0", pc=0x100)
        assert [e.cycle for e in tracer.events()] == [5, 3, 9]
        assert [e.name for e in tracer.events()] == ["enqueue", "start", "end"]

    def test_ring_buffer_overflow_drops_oldest(self):
        tracer = Tracer(capacity=3)
        for cycle in range(7):
            tracer.emit(cycle, "vm", "tick", "execution", n=cycle)
        assert len(tracer) == 3
        assert tracer.emitted == 7
        assert tracer.dropped == 4
        assert [e.cycle for e in tracer.events()] == [4, 5, 6]

    def test_event_payload_and_dict(self):
        tracer = Tracer()
        tracer.emit(42, "codecache", "miss", "execution", level="l1", pc=0x8048000)
        (event,) = tracer.events()
        assert isinstance(event, TraceEvent)
        assert event.args == {"level": "l1", "pc": 0x8048000}
        as_dict = event.as_dict()
        assert as_dict["cycle"] == 42
        assert as_dict["category"] == "codecache"
        assert as_dict["args"]["level"] == "l1"

    def test_counts_and_tiles(self):
        tracer = Tracer()
        tracer.emit(1, "net", "msg", "execution")
        tracer.emit(2, "net", "msg", "mmu")
        tracer.emit(3, "mem", "tlb_miss", "mmu")
        assert tracer.counts_by_category() == {"mem": 1, "net": 2}
        assert tracer.tiles() == ["execution", "mmu"]

    def test_clear_resets_everything(self):
        tracer = Tracer(capacity=2)
        for cycle in range(5):
            tracer.emit(cycle, "vm", "tick", "execution")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0

    def test_events_by_tile_sorts_within_tile(self):
        tracer = Tracer()
        tracer.emit(9, "vm", "b", "execution")
        tracer.emit(4, "vm", "a", "execution")
        tracer.emit(7, "vm", "c", "manager")
        groups = events_by_tile(tracer.events())
        assert [e.cycle for e in groups["execution"]] == [4, 9]
        assert [e.cycle for e in groups["manager"]] == [7]

    def test_rejects_nonpositive_capacity(self):
        try:
            Tracer(capacity=0)
        except ValueError:
            pass
        else:
            raise AssertionError("expected ValueError")


class TestNullSink:
    def test_null_tracer_is_disabled_and_empty(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit(1, "vm", "tick", "execution", anything=True)
        assert NULL_TRACER.events() == []
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.dropped == 0
        assert isinstance(NULL_TRACER, NullTracer)

    def test_untraced_run_adds_no_events(self):
        """With tracing off (the default) the whole run emits nothing."""
        vm = TimingVM(_trace_program(), PRESETS["speculative_4"])
        assert vm.tracer is NULL_TRACER
        result = vm.run()
        assert result.exit_code == 36
        assert vm.tracer.events() == []
        assert NULL_TRACER.emitted == 0
        # every subsystem shares the same null sink
        assert vm.subsystem.tracer is NULL_TRACER
        assert vm.hierarchy.tracer is NULL_TRACER
        assert vm.memsys.tracer is NULL_TRACER
        assert vm.network.tracer is NULL_TRACER

    def test_traced_and_untraced_runs_agree_on_timing(self):
        """Tracing is observational: it must not change simulated time."""
        untraced = TimingVM(_trace_program(), PRESETS["speculative_4"]).run()
        vm = TimingVM(_trace_program(), PRESETS["speculative_4"], tracer=Tracer())
        traced = vm.run()
        assert traced.cycles == untraced.cycles
        assert traced.stats == untraced.stats
        assert len(vm.tracer) > 0


class TestTracedRun:
    def test_expected_categories_present(self):
        vm = TimingVM(_trace_program(), PRESETS["speculative_4"], tracer=Tracer())
        vm.run()
        counts = vm.tracer.counts_by_category()
        for category in ("translate", "codecache", "specq", "net", "mem"):
            assert counts.get(category, 0) > 0, f"no {category} events"

    def test_translate_events_carry_slave_tile(self):
        vm = TimingVM(_trace_program(), PRESETS["speculative_4"], tracer=Tracer())
        vm.run()
        translate_tiles = {
            e.tile for e in vm.tracer.events() if e.category == "translate"
        }
        assert translate_tiles
        assert all(tile.startswith("slave") for tile in translate_tiles)

    def test_specq_events_carry_queue_depth(self):
        vm = TimingVM(_trace_program(), PRESETS["speculative_4"], tracer=Tracer())
        vm.run()
        specq = [e for e in vm.tracer.events() if e.category == "specq"]
        assert specq
        assert all("qlen" in (e.args or {}) for e in specq)
        assert all((e.args or {}).get("qlen", -1) >= 0 for e in specq)

    def test_morphing_run_emits_reconfig(self):
        vm = TimingVM(_trace_program(), PRESETS["morph_threshold_5"], tracer=Tracer())
        vm.run()
        morph = [e for e in vm.tracer.events() if e.category == "morph"]
        assert morph, "morphing run should emit at least the initial reconfig"
        first = morph[0]
        assert first.name == "reconfig"
        assert first.args["old"] == "(initial)"
        assert first.args["new_translators"] == 9

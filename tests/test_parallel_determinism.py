"""Parallel-vs-serial determinism: the figures must be byte-identical.

Every timing run is deterministic (fixed PRNG seeds, no wall-clock in
the simulation), so executing the grid on a process pool must produce
exactly the figures a serial sweep does.
"""

import pytest

from repro.harness.figures import figure4_l15_cache
from repro.harness.runner import (
    RunGrid,
    clear_cache,
    configure_disk_cache,
    run_many,
    run_one,
)

SCALE = 0.1
SMALL = ["164.gzip", "181.mcf"]
CONFIGS = ["no_l15", "l15_64k"]


@pytest.fixture(autouse=True)
def _isolated(tmp_path):
    """Each test gets a cold memo and its own throwaway disk root."""
    configure_disk_cache(enabled=True, root=tmp_path)
    clear_cache()
    yield
    configure_disk_cache(enabled=False)
    clear_cache()


def test_run_many_matches_run_one(tmp_path):
    cells = [(w, c, SCALE) for w in SMALL for c in CONFIGS]
    parallel = run_many(cells, jobs=2)
    configure_disk_cache(enabled=True, root=tmp_path / "serial")
    clear_cache()
    for workload, config, scale in cells:
        serial = run_one(workload, config, scale)
        result = parallel[(workload, config, scale)]
        assert result.cycles == serial.cycles
        assert result.piii_cycles == serial.piii_cycles
        assert result.guest_instructions == serial.guest_instructions
        assert result.stats == serial.stats


def test_figures_byte_identical_across_job_counts(tmp_path):
    serial = figure4_l15_cache(workloads=SMALL, scale=SCALE, jobs=1).render()
    configure_disk_cache(enabled=True, root=tmp_path / "par")
    clear_cache()
    parallel = figure4_l15_cache(workloads=SMALL, scale=SCALE, jobs=4).render()
    assert parallel == serial


def test_materialize_populates_memo(tmp_path):
    grid = RunGrid(SMALL, CONFIGS, SCALE).materialize(jobs=2)
    # every row is now a memo hit: identical objects on repeat access
    row1 = grid.row(SMALL[0])
    row2 = grid.row(SMALL[0])
    assert all(a is b for a, b in zip(row1, row2))


def test_run_many_dedupes_work_list():
    configure_disk_cache(enabled=False)
    cells = [("164.gzip", "no_l15", SCALE)] * 3
    results = run_many(cells, jobs=1)
    assert len(results) == 1

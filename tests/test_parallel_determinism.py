"""Parallel-vs-serial determinism: the figures must be byte-identical.

Every timing run is deterministic (fixed PRNG seeds, no wall-clock in
the simulation), so executing the grid on a process pool must produce
exactly the figures a serial sweep does.
"""

import pytest

from repro.harness.figures import figure4_l15_cache
from repro.harness.runner import (
    RunGrid,
    clear_cache,
    configure_disk_cache,
    run_many,
    run_one,
)

SCALE = 0.1
SMALL = ["164.gzip", "181.mcf"]
CONFIGS = ["no_l15", "l15_64k"]


@pytest.fixture(autouse=True)
def _isolated(tmp_path):
    """Each test gets a cold memo and its own throwaway disk root."""
    configure_disk_cache(enabled=True, root=tmp_path)
    clear_cache()
    yield
    configure_disk_cache(enabled=False)
    clear_cache()


def test_run_many_matches_run_one(tmp_path):
    cells = [(w, c, SCALE) for w in SMALL for c in CONFIGS]
    parallel = run_many(cells, jobs=2)
    configure_disk_cache(enabled=True, root=tmp_path / "serial")
    clear_cache()
    for workload, config, scale in cells:
        serial = run_one(workload, config, scale)
        result = parallel[(workload, config, scale)]
        assert result.cycles == serial.cycles
        assert result.piii_cycles == serial.piii_cycles
        assert result.guest_instructions == serial.guest_instructions
        assert result.stats == serial.stats


def test_figures_byte_identical_across_job_counts(tmp_path):
    serial = figure4_l15_cache(workloads=SMALL, scale=SCALE, jobs=1).render()
    configure_disk_cache(enabled=True, root=tmp_path / "par")
    clear_cache()
    parallel = figure4_l15_cache(workloads=SMALL, scale=SCALE, jobs=4).render()
    assert parallel == serial


def test_materialize_populates_memo(tmp_path):
    grid = RunGrid(SMALL, CONFIGS, SCALE).materialize(jobs=2)
    # every row is now a memo hit: identical objects on repeat access
    row1 = grid.row(SMALL[0])
    row2 = grid.row(SMALL[0])
    assert all(a is b for a, b in zip(row1, row2))


def test_run_many_dedupes_work_list():
    configure_disk_cache(enabled=False)
    cells = [("164.gzip", "no_l15", SCALE)] * 3
    results = run_many(cells, jobs=1)
    assert len(results) == 1


def test_parallel_stores_are_counted(tmp_path):
    """Worker disk stores must fold into the parent's bookkeeping.

    The pool reuses worker processes, so store counts must come from
    per-call deltas — the old implementation reported ``stores: 0`` for
    fully cold parallel runs (the BENCH_results.json bug), because the
    workers' DiskCache objects were recreated per dispatch and their
    counts thrown away.
    """
    from repro.harness.runner import disk_cache

    cells = [(w, c, SCALE) for w in SMALL for c in CONFIGS]
    run_many(cells, jobs=2)
    disk = disk_cache()
    assert disk is not None
    assert disk.stats()["stores"] == len(cells)
    # the workers also persisted their JIT code packs for each group
    packs = list(disk.root.glob("jitpack_*.bin"))
    import os
    if os.environ.get("REPRO_JIT", "1").strip().lower() not in ("0", "off", "no", "false"):
        assert len(packs) == len(SMALL)


def test_worker_telemetry_collected_and_aggregated(tmp_path):
    """A pooled sweep leaves per-worker snapshots plus a deterministic
    aggregate behind — the BENCH 'workers' section."""
    from repro.harness.runner import clear_worker_telemetry, worker_telemetry

    clear_worker_telemetry()
    cells = [(w, c, SCALE) for w in SMALL for c in CONFIGS]
    run_many(cells, jobs=2)
    telemetry = worker_telemetry()

    assert telemetry["workers"], "pooled run recorded no worker snapshots"
    for pid, snap in telemetry["workers"].items():
        assert pid.isdigit()  # keys are stringified worker pids
        assert snap["pid"] == int(pid)
        assert "counters" in snap["metrics"]
        assert snap["disk"] is not None

    aggregate = telemetry["aggregate"]
    assert aggregate["worker_count"] == len(telemetry["workers"])
    assert aggregate["metrics"]["name"] == "workers.aggregate"
    # cold sweep: every cell was simulated and stored by some worker
    assert aggregate["disk"]["stores"] == len(cells)
    assert aggregate["disk"]["hits"] == 0
    # profiling was off, so the merged profile carries no paths
    assert aggregate["profile"].get("paths", {}) == {}


def test_worker_telemetry_cleared_and_absent_when_serial(tmp_path):
    from repro.harness.runner import clear_worker_telemetry, worker_telemetry

    clear_worker_telemetry()
    assert worker_telemetry() == {"workers": {}, "aggregate": None}
    # the serial path never ships work to a pool, so nothing is recorded
    run_many([(SMALL[0], CONFIGS[0], SCALE)], jobs=1)
    assert worker_telemetry() == {"workers": {}, "aggregate": None}


def test_worker_telemetry_keeps_latest_cumulative_snapshot(tmp_path):
    """Pool workers are long-lived and ship *cumulative* state; the
    parent must keep the newest snapshot per pid, not fold repeats
    (folding would double-count every earlier dispatch)."""
    from repro.harness.runner import clear_worker_telemetry, worker_telemetry

    clear_worker_telemetry()
    cells = [(w, c, SCALE) for w in SMALL for c in CONFIGS]
    run_many(cells, jobs=2)
    first_stores = worker_telemetry()["aggregate"]["disk"]["stores"]
    clear_cache()  # cold memo, warm disk: second sweep stores nothing new
    run_many(cells, jobs=2)
    second_stores = worker_telemetry()["aggregate"]["disk"]["stores"]
    assert first_stores == len(cells)
    assert second_stores <= first_stores  # cumulative, never double-counted


def test_jit_pack_is_loaded_by_sibling_workers(tmp_path):
    """A second cold parallel sweep must reuse the workers' JIT packs:
    results stay bit-identical and no result cells are re-stored."""
    from repro.harness.runner import disk_cache

    cells = [(w, c, SCALE) for w in SMALL for c in CONFIGS]
    first = run_many(cells, jobs=2)
    stores_after_first = disk_cache().stats()["stores"]
    clear_cache()  # cold memo, warm disk + packs
    second = run_many(cells, jobs=2)
    assert disk_cache().stats()["stores"] == stores_after_first
    for key, result in first.items():
        assert second[key].cycles == result.cycles
        assert second[key].stats == result.stats

"""Unit tests for repro.common.bitops."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import bitops


class TestWrapping:
    def test_u32_wraps(self):
        assert bitops.u32(0x1_0000_0001) == 1
        assert bitops.u32(-1) == 0xFFFFFFFF

    def test_u16_u8(self):
        assert bitops.u16(0x12345) == 0x2345
        assert bitops.u8(0x1FF) == 0xFF

    @given(st.integers())
    def test_u32_in_range(self, value):
        assert 0 <= bitops.u32(value) <= 0xFFFFFFFF


class TestSignedness:
    def test_to_signed32(self):
        assert bitops.to_signed32(0xFFFFFFFF) == -1
        assert bitops.to_signed32(0x7FFFFFFF) == 0x7FFFFFFF
        assert bitops.to_signed32(0x80000000) == -0x80000000

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_signed_roundtrip(self, value):
        assert bitops.to_signed32(bitops.to_unsigned32(value)) == value

    def test_sext8(self):
        assert bitops.sext8(0x7F) == 0x7F
        assert bitops.sext8(0x80) == 0xFFFFFF80
        assert bitops.sext8(0xFF) == 0xFFFFFFFF

    def test_sext16(self):
        assert bitops.sext16(0x8000) == 0xFFFF8000
        assert bitops.sext16(0x1234) == 0x1234

    @given(st.integers(min_value=0, max_value=0xFF))
    def test_sext8_preserves_low_byte(self, value):
        assert bitops.sext8(value) & 0xFF == value


class TestParity:
    def test_parity_examples(self):
        assert bitops.parity8(0) is True  # zero bits set: even
        assert bitops.parity8(1) is False
        assert bitops.parity8(3) is True
        assert bitops.parity8(7) is False
        assert bitops.parity8(0xFF) is True

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_parity_matches_popcount(self, value):
        expected = bin(value & 0xFF).count("1") % 2 == 0
        assert bitops.parity8(value) == expected


class TestAlignment:
    def test_align_down_up(self):
        assert bitops.align_down(0x1234, 0x100) == 0x1200
        assert bitops.align_up(0x1234, 0x100) == 0x1300
        assert bitops.align_up(0x1200, 0x100) == 0x1200

    def test_log2_exact(self):
        assert bitops.log2_exact(1) == 0
        assert bitops.log2_exact(4096) == 12
        with pytest.raises(ValueError):
            bitops.log2_exact(12)
        with pytest.raises(ValueError):
            bitops.log2_exact(0)

    def test_is_power_of_two(self):
        assert bitops.is_power_of_two(64)
        assert not bitops.is_power_of_two(0)
        assert not bitops.is_power_of_two(96)

"""Random straight-line VX86 block generator for the equivalence tests.

Produces assembly source for a single basic block of random ALU,
shift, flag, stack and memory traffic, ending in a syscall (so every
flag is live at the exit and the checker compares all of them).

Deliberately out of scope, to keep generated programs inside the
translator's (documented) equivalence envelope:

* ``div``/``idiv`` — quotient guards make random operands fault-prone;
* ``xchg`` with a memory operand — the frontend caches the effective
  address while the interpreter recomputes it after the first write;
* memory addressing beyond ``[buf + masked_reg (+ disp)]`` — the
  interpreter-differential tests need every access inside mapped data.

Dynamic shift counts always come from ``ecx`` (the only register the
frontend reads for a register count, mirroring x86's CL rule).
"""

from __future__ import annotations

import random
from typing import List, Optional

REGS = ("eax", "ecx", "edx", "ebx", "esi", "edi")
SETCC = ("sete", "setne", "setb", "setae", "setl", "setg", "setbe", "sets", "seto", "setp")
JCC = ("jz", "jnz", "jb", "jae", "jl", "jg", "jbe", "js", "jo", "jp")
ALU = ("add", "sub", "and", "or", "xor", "cmp")
SHIFTS = ("shl", "shr", "sar")

#: data buffer backing all generated memory traffic
BUF_BYTES = 512

_IMMEDIATES = (0, 1, 2, 5, 0x7F, 0x80, 0xFF, 0x100, 0x7FFF, 0xFFFF, 0x7FFFFFFF, 0x80000000)


def _imm(rng: random.Random) -> int:
    if rng.random() < 0.5:
        return rng.choice(_IMMEDIATES)
    return rng.getrandbits(32)


def _mem(rng: random.Random, lines: List[str], width: int) -> str:
    """A `[buf + reg]` operand, first masking the index into bounds."""
    reg = rng.choice(REGS)
    mask = (BUF_BYTES - 4) & ~3 if width == 32 else BUF_BYTES - 1
    lines.append(f"    and {reg}, {mask:#x}")
    return f"[buf + {reg}]"


def _one_instruction(rng: random.Random, lines: List[str], stack_depth: int, shifts: int) -> int:
    """Append one random instruction (plus any masking prelude).

    Returns the new stack depth; mutates ``lines`` in place.
    """
    dst = rng.choice(REGS)
    src = rng.choice(REGS)
    kind = rng.randrange(16)
    if kind == 0:
        lines.append(f"    mov {dst}, {_imm(rng)}")
    elif kind == 1:
        lines.append(f"    mov {dst}, {src}")
    elif kind == 2:
        op = rng.choice(ALU)
        rhs = str(_imm(rng)) if rng.random() < 0.4 else src
        lines.append(f"    {op} {dst}, {rhs}")
    elif kind == 3:
        lines.append(f"    test {dst}, {src}")
    elif kind == 4:
        op = rng.choice(SHIFTS)
        if shifts < 2 and rng.random() < 0.3:
            lines.append(f"    {op} {dst}, ecx")
            return stack_depth
        lines.append(f"    {op} {dst}, {rng.randrange(0, 32)}")
    elif kind == 5:
        lines.append(f"    {rng.choice(('inc', 'dec', 'neg', 'not'))} {dst}")
    elif kind == 6:
        lines.append(f"    imul {dst}, {src}")
    elif kind == 7:
        lines.append(f"    {rng.choice(SETCC)} {dst}")
    elif kind == 8:
        scale = rng.choice((1, 2, 4, 8))
        lines.append(f"    lea {dst}, [{src} + {rng.choice(REGS)}*{scale} + {rng.randrange(64)}]")
    elif kind == 9:
        lines.append(f"    push {dst}")
        return stack_depth + 1
    elif kind == 10:
        if stack_depth > 0:
            lines.append(f"    pop {dst}")
            return stack_depth - 1
        lines.append(f"    push {src}")
        return stack_depth + 1
    elif kind == 11:
        lines.append("    cdq")
    elif kind == 12:
        lines.append(f"    xchg {dst}, {src}")
    elif kind == 13:
        operand = _mem(rng, lines, 32)
        if rng.random() < 0.5:
            lines.append(f"    mov {dst}, {operand}")
        else:
            lines.append(f"    {rng.choice(('mov', 'add', 'xor'))} {operand}, {dst}")
    elif kind == 14:
        operand = _mem(rng, lines, 8)
        if rng.random() < 0.5:
            lines.append(f"    {rng.choice(('movzx', 'movsx'))} {dst}, {operand}")
        else:
            lines.append(f"    movb {operand}, {dst}")
    else:
        op = rng.choice(("addb", "subb", "xorb", "cmpb"))
        lines.append(f"    {op} {dst}, {src}")
    return stack_depth


def random_block_lines(rng: random.Random, length: int) -> List[str]:
    """Body instructions only (no label, no terminator)."""
    lines: List[str] = []
    depth = 0
    shifts = 0
    for _ in range(length):
        before = len(lines)
        depth = _one_instruction(rng, lines, depth, shifts)
        shifts += sum(
            line.split()[0] in SHIFTS and line.endswith("ecx") for line in lines[before:]
        )
    while depth > 0:
        lines.append(f"    pop {rng.choice(REGS)}")
        depth -= 1
    return lines


def render_program(body: List[str], terminator: Optional[str] = None) -> str:
    """Wrap block body lines into a complete assemblable program."""
    lines = ["_start:"]
    lines += body
    if terminator:
        lines.append(f"    {terminator} done")
        lines.append("    add eax, 11")
    lines += [
        "done:",
        "    int 0x80",
        ".data",
        f"buf: dz {BUF_BYTES}",
    ]
    return "\n".join(lines) + "\n"


def random_program(seed: int, length: int = 12) -> str:
    """One-call generator used by the differential fuzz tests."""
    rng = random.Random(seed)
    body = random_block_lines(rng, length)
    terminator = rng.choice((None, None, *JCC))
    return render_program(body, terminator)


# -- JIT-eligibility-biased profile ---------------------------------------
#
# The block JIT compiles a strictly larger envelope than the default
# profile exercises: divides (speculative, guarded), MUL's 64-bit
# product, XCHG with a memory operand, and every terminator shape
# (direct/computed jmp, call, ret, halt).  This profile folds those in
# so the jitverify property test covers the whole closure grammar.


def _one_jit_instruction(rng: random.Random, lines: List[str],
                         stack_depth: int, shifts: int) -> int:
    roll = rng.random()
    if roll < 0.15:
        choice = rng.randrange(4)
        if choice == 0:
            # unsigned divide under the zeroed-EDX convention; a zero
            # divisor faults identically in closure and interpreter
            lines.append("    xor edx, edx")
            lines.append(f"    div {rng.choice(('ebx', 'esi', 'edi'))}")
        elif choice == 1:
            # signed divide under the CDQ sign-fill convention
            lines.append("    cdq")
            lines.append(f"    idiv {rng.choice(('ebx', 'esi', 'edi'))}")
        elif choice == 2:
            lines.append(f"    mul {rng.choice(REGS)}")
        else:
            operand = _mem(rng, lines, 32)
            lines.append(f"    xchg {rng.choice(REGS)}, {operand}")
        return stack_depth
    return _one_instruction(rng, lines, stack_depth, shifts)


def random_jit_block_lines(rng: random.Random, length: int) -> List[str]:
    """Like :func:`random_block_lines` with the JIT-biased op mix."""
    lines: List[str] = []
    depth = 0
    shifts = 0
    for _ in range(length):
        before = len(lines)
        depth = _one_jit_instruction(rng, lines, depth, shifts)
        shifts += sum(
            line.split()[0] in SHIFTS and line.endswith("ecx") for line in lines[before:]
        )
    while depth > 0:
        lines.append(f"    pop {rng.choice(REGS)}")
        depth -= 1
    return lines


#: terminator shapes the JIT profile rotates through; each lands on the
#: trailing `done: int 0x80` epilogue
_JIT_TERMINATORS = (
    None,  # fall through into the syscall block
    "jcc",
    ("    jmp done",),
    ("    mov esi, done", "    jmp esi"),  # computed jump
    ("    push done", "    ret"),  # indirect return
    ("    call done",),
)


def render_jit_program(body: List[str], terminator) -> str:
    """Wrap a JIT-profile body with one of the terminator shapes."""
    if terminator is None or terminator == "jcc" or isinstance(terminator, str):
        return render_program(body, terminator if terminator != "jcc" else None)
    lines = ["_start:"] + body + list(terminator)
    lines += ["done:", "    int 0x80", ".data", f"buf: dz {BUF_BYTES}"]
    return "\n".join(lines) + "\n"


def random_jit_program(seed: int, length: int = 12) -> str:
    """One-call JIT-profile generator for the jitverify property test."""
    rng = random.Random(seed)
    body = random_jit_block_lines(rng, length)
    terminator = rng.choice(_JIT_TERMINATORS)
    if terminator == "jcc":
        return render_program(body, rng.choice(JCC))
    return render_jit_program(body, terminator)


# -- trace-JIT-biased profile ----------------------------------------------
#
# The trace JIT compiles whole hot *paths*, so its differential tests
# need multi-block loops whose successions are stable enough to chain
# and trace: a counted loop over several blocks joined by direct jumps,
# stable computed jumps (``mov esi, label; jmp esi`` — an indirect
# terminator whose target never changes), and optionally a one-shot
# self-modifying patch into the loop's own code page mid-run (the SMC
# side-exit and re-formation path).  ``ecx`` (loop counter) and ``esi``
# (computed-jump target) are reserved; bodies draw from the rest.

_TRACE_BODY_REGS = ("eax", "ebx", "edx", "edi")


def _one_trace_instruction(rng: random.Random, lines: List[str]) -> None:
    dst = rng.choice(_TRACE_BODY_REGS)
    src = rng.choice(_TRACE_BODY_REGS)
    kind = rng.randrange(8)
    if kind == 0:
        lines.append(f"    mov {dst}, {_imm(rng)}")
    elif kind == 1:
        lines.append(f"    mov {dst}, {src}")
    elif kind == 2:
        # imul included deliberately: its emitter burns the most helper
        # temporaries, the class of names a trace header local could
        # collide with (register form only — no immediate encoding)
        op = rng.choice(ALU + ("imul",))
        rhs = src if op == "imul" else (
            str(_imm(rng)) if rng.random() < 0.4 else src
        )
        lines.append(f"    {op} {dst}, {rhs}")
    elif kind == 3:
        lines.append(f"    {rng.choice(SHIFTS)} {dst}, {rng.randrange(0, 32)}")
    elif kind == 4:
        lines.append(f"    {rng.choice(('inc', 'dec', 'neg', 'not'))} {dst}")
    elif kind == 5:
        lines.append(f"    {rng.choice(SETCC)} {dst}")
    elif kind == 6:
        scale = rng.choice((1, 2, 4))
        lines.append(f"    lea {dst}, [{src} + {dst}*{scale} + {rng.randrange(64)}]")
    else:
        mask = (BUF_BYTES - 4) & ~3
        lines.append(f"    and {src}, {mask:#x}")
        if rng.random() < 0.5:
            lines.append(f"    mov {dst}, [buf + {src}]")
        else:
            lines.append(f"    mov [buf + {src}], {dst}")


def random_trace_program(
    seed: int,
    iterations: int = 40,
    body_length: int = 3,
) -> str:
    """A multi-block counted loop for the trace-JIT differential tests.

    Each generated program terminates (the loop is counter-driven and
    the patch never touches the loop control), runs its body hot enough
    for chains and traces to form at the default thresholds, and mixes
    in the trace-specific hazards at random: a stable computed jump, a
    conditional interior branch, and a mid-run self-modifying store
    into a code page the loop itself spans.
    """
    rng = random.Random(seed)
    blocks = rng.randrange(2, 5)
    computed_at = rng.randrange(blocks - 1) if rng.random() < 0.5 else None
    patch = rng.random() < 0.5
    interior_jcc = rng.random() < 0.4

    lines = ["_start:", f"    mov ecx, {iterations}", "head:"]
    # fixed patch anchor: `mov eax, 5` whose immediate byte sits at
    # [head + 2] once the counter init is behind us (same idiom as the
    # self-patching fast-path test)
    lines.append("    mov eax, 5")
    for j in range(blocks):
        for _ in range(rng.randrange(1, body_length + 1)):
            _one_trace_instruction(rng, lines)
        if j < blocks - 1:
            if interior_jcc and j == 0:
                # a conditional that settles: taken the same way every
                # iteration after the first few, so the chain stays hot
                lines.append(f"    cmp ecx, {iterations + 1}")
                lines.append(f"    {rng.choice(('jb', 'jne', 'jl'))} b{j + 1}")
                lines.append("    add edi, 3")
            if computed_at == j:
                lines.append(f"    mov esi, b{j + 1}")
                lines.append("    jmp esi")
            else:
                lines.append(f"    jmp b{j + 1}")
            lines.append(f"b{j + 1}:")
    if patch:
        lines.append(f"    cmp ecx, {iterations // 2}")
        lines.append("    jne nopatch")
        lines.append("    movb [head + 2], 9")
        lines.append("nopatch:")
    lines += [
        "    sub ecx, 1",
        "    jnz head",
        "    mov eax, 1",
        "    and ebx, 255",
        "    int 0x80",
        ".data",
        f"buf: dz {BUF_BYTES}",
    ]
    return "\n".join(lines) + "\n"

"""Seeded stress: self-modifying code while the fabric morphs.

The two most invasive runtime protocols — SMC invalidation (blows away
translations, JIT closures and chain links mid-run) and dynamic
morphing (retiles slaves and banks under hysteresis) — are individually
tested elsewhere.  This module forces them to interleave: a generated
program patches function immediates dozens of times while running under
the most trigger-happy morph preset, and the chained-dispatch/JIT
structures are audited with ``check_chain_invariants`` after every
single block.  The interpreter provides the golden exit code.
"""

import random

from repro.guest.assembler import assemble
from repro.guest.interpreter import GuestInterpreter
from repro.morph.config import PRESETS
from repro.obs.events import Tracer
from repro.vm.timing import TimingVM

SEED = 0xC0DE
FUNCTIONS = 4
SEGMENTS = 24


def _stress_source(seed: int) -> str:
    """A straight-line guest that interleaves patches, calls and loops.

    Each segment patches the imm8 of one randomly chosen function
    (``mov eax, imm`` assembles as opcode/ModRM/imm8, so the immediate
    byte is at ``fN + 2``), then calls two functions and runs a short
    hot loop — enough dispatch traffic for chains, JIT traces and
    translation-queue pressure to build up between invalidations.
    """
    rng = random.Random(seed)
    lines = ["_start:", "    xor esi, esi"]
    for segment in range(SEGMENTS):
        victim = rng.randrange(FUNCTIONS)
        value = rng.randrange(1, 100)
        lines += [
            f"    movb [f{victim} + 2], {value}",
            f"    call f{rng.randrange(FUNCTIONS)}",
            "    add esi, eax",
            f"    call f{rng.randrange(FUNCTIONS)}",
            "    add esi, eax",
            # a hot loop long enough (one block per iteration) to span
            # the controller's 64-block sample interval with an empty
            # translation queue, so the fabric morphs to memory-heavy
            # between patches and back when retranslation begins
            f"    mov ecx, {rng.randrange(100, 200)}",
            f"spin{segment}:",
            "    add esi, 1",
            "    dec ecx",
            f"    cmp ecx, 0",
            f"    jg spin{segment}",
        ]
    lines += [
        "    mov eax, esi",
        "    and eax, 255",
        "    mov ebx, eax",
        "    mov eax, 1",
        "    int 0x80",
    ]
    for index in range(FUNCTIONS):
        lines += [f"f{index}:", f"    mov eax, {index + 1}", "    ret"]
    return "\n".join(lines)


def _golden_exit(source: str) -> int:
    return GuestInterpreter.for_program(assemble(source)).run()


def _program(source: str):
    program = assemble(source)
    program.name = "morph-smc-stress"
    return program


def _hasten_morph(vm: TimingVM, cycles: int = 200) -> None:
    """Shrink the hysteresis so the short stress run really morphs.

    The default 15k-cycle interval exceeds the whole run; the emitted
    reconfig events carry the live value, so conformance still checks
    the interval that was actually in force.
    """
    assert vm.morph is not None
    vm.morph.policy.hysteresis_cycles = cycles


class TestMorphSmcStress:
    def test_stepped_run_keeps_chain_invariants(self):
        source = _stress_source(SEED)
        vm = TimingVM(
            _program(source), PRESETS["morph_threshold_0"],
            tracer=Tracer(), jit=True,
        )
        _hasten_morph(vm)
        steps = 0
        while vm.step():
            steps += 1
            findings = vm.check_chain_invariants()
            assert not findings, (
                f"step {steps}: " + "; ".join(str(f) for f in findings)
            )
            jit = getattr(vm.interp, "_jit", None)
            if jit is not None:
                assert not jit.check_consistency(), f"step {steps}"
        assert steps > 100
        assert vm.stats["smc_invalidations"] >= SEGMENTS // 2
        assert vm.morph.fsm_state()["reconfigurations"] >= 2
        assert vm.interp.exit_code == _golden_exit(source)

    def test_checked_protocol_run_matches_interpreter(self):
        source = _stress_source(SEED)
        vm = TimingVM(
            _program(source), PRESETS["morph_threshold_0"],
            jit=True, checked="protocol",
        )
        _hasten_morph(vm)
        result = vm.run()  # raises VerificationError on any violation
        assert result.exit_code == _golden_exit(source)
        assert vm.protocol_report is not None and vm.protocol_report.ok
        assert result.stats["vm.smc_invalidations"] >= SEGMENTS // 2
        assert vm.morph.fsm_state()["reconfigurations"] >= 2

    def test_other_seeds_conform_too(self):
        from repro.verify.protocol import conform_vm

        for seed in (1, 7, 0xBEEF):
            source = _stress_source(seed)
            vm = TimingVM(
                _program(source), PRESETS["morph_threshold_0"],
                tracer=Tracer(), jit=True,
            )
            _hasten_morph(vm)
            vm.run()
            report = conform_vm(vm)
            assert report.ok, f"seed {seed}:\n" + "\n".join(
                str(f) for f in report.findings
            )
            assert vm.interp.exit_code == _golden_exit(source)

"""IR verifier: each check catches a deliberately seeded violation."""

import pytest

from repro.dbt.frontend import build_ir
from repro.dbt.ir import (
    ALL_FLAGS_MASK,
    ExitKind,
    Terminator,
    UOp,
    UOpKind,
    flag_mask,
)
from repro.dbt.optimizer import optimize_block
from repro.guest.assembler import assemble
from repro.guest.isa import ConditionCode, Flag, Register
from repro.verify.findings import Severity, VerificationError
from repro.verify.irverify import assert_ir_ok, verify_ir


def ir_for(source: str):
    program = assemble(source)
    text = program.text

    def read(address, length):
        offset = address - text.address
        return text.data[offset : offset + length]

    return build_ir(read, program.entry)


def codes(findings):
    return {f.code for f in findings}


class TestCleanBlocks:
    def test_frontend_output_is_clean(self):
        ir = ir_for("_start: add eax, ebx\nmov [0x8400000], eax\nhlt\n")
        assert verify_ir(ir) == []

    def test_optimized_output_is_clean(self):
        ir = ir_for("_start: mov eax, 5\nadd eax, eax\ncmp eax, 10\nje out\nout: hlt\n")
        optimize_block(ir)
        assert verify_ir(ir) == []

    def test_assert_ok_passes_clean_block(self):
        ir = ir_for("_start: inc ecx\nhlt\n")
        assert_ir_ok(ir)  # must not raise


class TestSeededViolations:
    def test_duplicate_def(self):
        ir = ir_for("_start: mov eax, 1\nhlt\n")
        first_def = next(u for u in ir.uops if u.dst is not None)
        ir.uops.append(UOp(UOpKind.CONST, dst=first_def.dst, imm=7))
        assert "duplicate-def" in codes(verify_ir(ir))

    def test_use_before_def(self):
        ir = ir_for("_start: mov eax, 1\nhlt\n")
        bogus = ir.new_temp()
        missing = ir.new_temp()  # never defined
        ir.uops.append(UOp(UOpKind.NOT, dst=bogus, a=missing))
        assert "use-before-def" in codes(verify_ir(ir))

    def test_temp_out_of_range(self):
        ir = ir_for("_start: mov eax, 1\nhlt\n")
        ir.uops.append(UOp(UOpKind.CONST, dst=ir.next_temp + 10, imm=0))
        assert "temp-out-of-range" in codes(verify_ir(ir))

    def test_bad_arity_missing_operand(self):
        ir = ir_for("_start: mov eax, 1\nhlt\n")
        ir.uops.append(UOp(UOpKind.PUT, reg=None, a=None))  # PUT needs both
        found = codes(verify_ir(ir))
        assert "bad-arity" in found

    def test_bad_arity_side_effect_with_dst(self):
        ir = ir_for("_start: mov eax, 1\nhlt\n")
        value = next(u.dst for u in ir.uops if u.dst is not None)
        ir.uops.append(UOp(UOpKind.PUT, dst=ir.new_temp(), reg=Register.EBX, a=value))
        assert "bad-arity" in codes(verify_ir(ir))

    def test_bad_terminator_missing_field(self):
        ir = ir_for("_start: mov eax, 1\nhlt\n")
        ir.terminator = Terminator(ExitKind.BRANCH, target=0x1000, cc=ConditionCode.E)
        assert "bad-terminator" in codes(verify_ir(ir))

    def test_indirect_terminator_undefined_temp(self):
        ir = ir_for("_start: mov eax, 1\nhlt\n")
        ir.terminator = Terminator(ExitKind.INDIRECT, temp=ir.new_temp())
        assert "use-before-def" in codes(verify_ir(ir))

    def test_bad_flag_mask_outside_semantics(self):
        ir = ir_for("_start: inc eax\nhlt\n")
        # INC never writes CF; claiming it in the mask is a frontend bug.
        flags = next(u for u in ir.uops if u.kind is UOpKind.FLAGS)
        flags.mask |= flag_mask([Flag.CF])
        assert "bad-flag-mask" in codes(verify_ir(ir))


class TestDeadFlagMisElimination:
    SOURCE = "_start: add eax, ebx\njz out\nout: hlt\n"

    def test_dropping_observed_flag_is_reported(self):
        ir = ir_for(self.SOURCE)
        flags = next(u for u in ir.uops if u.kind is UOpKind.FLAGS)
        flags.mask &= ~flag_mask([Flag.ZF])  # jz still observes ZF
        findings = verify_ir(ir)
        assert "dead-flag-mis-elimination" in codes(findings)
        bad = next(f for f in findings if f.code == "dead-flag-mis-elimination")
        assert bad.severity is Severity.ERROR
        assert "ZF" in bad.message

    def test_dropping_dead_flag_is_sound(self):
        ir = ir_for(self.SOURCE)
        flags = next(u for u in ir.uops if u.kind is UOpKind.FLAGS)
        # With live_out limited to ZF (what flagpeek would report for a
        # successor that overwrites everything), pruning CF is legal.
        flags.mask &= ~flag_mask([Flag.CF])
        live_out = flag_mask([Flag.ZF])
        assert verify_ir(ir, flag_live_out=live_out) == []

    def test_dropped_flag_before_setcc_is_reported(self):
        ir = ir_for("_start: cmp eax, ebx\nsetl ecx\nhlt\n")
        flags = next(u for u in ir.uops if u.kind is UOpKind.FLAGS)
        flags.mask &= ~flag_mask([Flag.SF])  # setl reads SF and OF
        assert "dead-flag-mis-elimination" in codes(verify_ir(ir))

    def test_flag_killed_by_later_writer_is_dead(self):
        # The first add's flags are fully overwritten by the second, so
        # pruning the first mask entirely is sound even with all flags
        # live at exit.
        ir = ir_for("_start: add eax, ebx\nadd eax, ecx\nhlt\n")
        first = next(u for u in ir.uops if u.kind is UOpKind.FLAGS)
        first.mask = 0
        assert verify_ir(ir, flag_live_out=ALL_FLAGS_MASK) == []


class TestAssertRaises:
    def test_error_raises_with_stage_attribution(self):
        ir = ir_for("_start: mov eax, 1\nhlt\n")
        ir.uops.append(UOp(UOpKind.CONST, dst=ir.next_temp + 1, imm=0))
        with pytest.raises(VerificationError) as excinfo:
            assert_ir_ok(ir, stage="constfold#1", context="block 0x8048000")
        assert excinfo.value.stage == "constfold#1"
        assert "constfold#1" in str(excinfo.value)
        assert excinfo.value.findings

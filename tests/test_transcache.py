"""Cross-run translation reuse: exactness, namespacing and SMC safety.

A :class:`~repro.dbt.transcache.CachingTranslator` hit must be
observationally identical to a fresh translation — same block fields,
same translator stats — and cached blocks must never survive writes to
the executable section (the generation key) or leak between translator
configurations (the knobs namespace).
"""

import pytest

from repro.dbt.transcache import CachingTranslator, TranslationCache, translator_knobs
from repro.dbt.translator import TranslationConfig, Translator
from repro.guest.assembler import assemble
from repro.guest.memory import GuestMemory
from repro.harness import runner
from repro.morph.config import PRESETS
from repro.vm.timing import run_timing
from repro.workloads import build_workload

from tests.test_self_modifying_code import SMC_PROGRAM, _expected_exit

PROGRAM_SOURCE = """
_start:
    mov ecx, 5
    mov eax, 0
loop:
    add eax, ecx
    sub ecx, 1
    cmp ecx, 0
    jne loop
    mov ebx, eax
    mov eax, 1
    int 0x80
"""


def _reader(program):
    """A code reader with the same semantics as ``TimingVM._read_code``."""
    memory = GuestMemory()
    program.load(memory)
    return memory.read_bytes


def _fields(block):
    return (
        block.guest_address, block.guest_length, block.guest_instr_count,
        block.instrs, block.exit_stubs, block.call_return_address,
        block.exit_kind, block.cost_cycles, block.translation_cycles,
        block.optimized, block.host_address,
    )


class TestCachingTranslator:
    def test_hit_is_field_identical_and_distinct_object(self):
        program = assemble(PROGRAM_SOURCE)
        cache = TranslationCache()
        caching = CachingTranslator(
            _reader(program), TranslationConfig(), cache, "prog", lambda: 0
        )
        first = caching.translate(program.entry)
        again = caching.translate(program.entry)
        assert again is not first
        assert _fields(again) == _fields(first)
        assert cache.stats()["hits"] == 1 and cache.stats()["misses"] == 1

    def test_hit_replays_exact_stats(self):
        program = assemble(PROGRAM_SOURCE)
        plain = Translator(_reader(program), TranslationConfig())
        plain.translate(program.entry)

        cache = TranslationCache()
        caching = CachingTranslator(
            _reader(program), TranslationConfig(), cache, "prog", lambda: 0
        )
        caching.translate(program.entry)  # miss
        miss_stats = dict(caching.stats.as_dict())
        assert miss_stats == plain.stats.as_dict()
        caching.translate(program.entry)  # hit
        assert caching.stats.as_dict() == {
            key: 2 * value for key, value in miss_stats.items()
        }

    def test_generation_bump_forces_retranslation(self):
        program = assemble(PROGRAM_SOURCE)
        cache = TranslationCache()
        generation = [0]
        caching = CachingTranslator(
            _reader(program), TranslationConfig(), cache, "prog",
            lambda: generation[0],
        )
        caching.translate(program.entry)
        generation[0] += 1
        caching.translate(program.entry)
        assert cache.stats() == {
            "hits": 0, "misses": 2, "namespaces": 1, "blocks": 2,
            "jit_namespaces": 0, "jit_blocks": 0,
            "trace_namespaces": 0, "traces": 0,
        }

    def test_knobs_separate_namespaces(self):
        assert translator_knobs(TranslationConfig()) != translator_knobs(
            TranslationConfig(optimize=False)
        )
        program = assemble(PROGRAM_SOURCE)
        cache = TranslationCache()
        opt = CachingTranslator(
            _reader(program), TranslationConfig(), cache, "prog", lambda: 0
        )
        noopt = CachingTranslator(
            _reader(program), TranslationConfig(optimize=False), cache,
            "prog", lambda: 0,
        )
        optimized = opt.translate(program.entry)
        unoptimized = noopt.translate(program.entry)
        assert cache.stats()["hits"] == 0 and cache.stats()["namespaces"] == 2
        assert optimized.optimized and not unoptimized.optimized


class TestTimingVmIntegration:
    @pytest.mark.parametrize("config_name", ["conservative_1", "speculative_4"])
    def test_cached_run_bit_identical_to_fresh(self, config_name):
        """Second run of a (workload, config) pair is served from the
        translation cache and must match a cache-free run exactly."""
        cache = TranslationCache()
        program = build_workload("181.mcf", scale=0.05)
        cached_runs = [
            run_timing(program, PRESETS[config_name],
                       translation_cache=cache, program_key="181.mcf@0.05")
            for _ in range(2)
        ]
        assert cache.stats()["hits"] > 0
        fresh = run_timing(program, PRESETS[config_name])
        for cached in cached_runs:
            assert cached.cycles == fresh.cycles
            assert cached.piii_cycles == fresh.piii_cycles
            assert cached.guest_instructions == fresh.guest_instructions
            assert cached.blocks_translated == fresh.blocks_translated
            assert cached.stats == fresh.stats

    def test_reuse_across_configs_bit_identical(self):
        """Config columns share translations; every cell still matches
        its cache-free twin."""
        cache = TranslationCache()
        program = build_workload("164.gzip", scale=0.05)
        for name in ["conservative_1", "speculative_4", "no_l15"]:
            cached = run_timing(program, PRESETS[name],
                                translation_cache=cache, program_key="gz")
            fresh = run_timing(program, PRESETS[name])
            assert (cached.cycles, cached.piii_cycles, cached.stats) == (
                fresh.cycles, fresh.piii_cycles, fresh.stats
            )
        assert cache.stats()["hits"] > 0

    def test_self_modifying_code_never_served_stale(self):
        """The generation key retires translations the moment the guest
        writes its own text section — across repeated cached runs."""
        program = assemble(SMC_PROGRAM)
        cache = TranslationCache()
        for _ in range(3):
            result = run_timing(program, PRESETS["speculative_4"],
                                translation_cache=cache, program_key="smc")
            assert result.exit_code == _expected_exit()
        fresh = run_timing(program, PRESETS["speculative_4"])
        assert result.stats == fresh.stats and result.cycles == fresh.cycles


class TestHarnessReuse:
    @pytest.fixture(autouse=True)
    def _isolated(self):
        runner.clear_cache()
        runner.configure_disk_cache(enabled=False)
        yield
        runner.clear_cache()
        runner.configure_disk_cache(enabled=False)

    def test_program_memo_and_translation_reuse(self):
        before = runner.cache_stats()["translations"]["hits"]
        first = runner.run_one("181.mcf", "conservative_1", 0.05)
        second = runner.run_one("181.mcf", "speculative_4", 0.05)
        stats = runner.cache_stats()
        assert stats["programs"] == 1
        assert stats["translations"]["hits"] > before
        fresh_program = build_workload("181.mcf", scale=0.05)
        for config, cell in (("conservative_1", first), ("speculative_4", second)):
            fresh = run_timing(fresh_program, PRESETS[config])
            assert (cell.cycles, cell.stats) == (fresh.cycles, fresh.stats)

"""Unit and property tests for VX86 flag semantics."""

from hypothesis import given
from hypothesis import strategies as st

from repro.common.bitops import MASK32, to_signed32, u32
from repro.guest import flags as F
from repro.guest.isa import ConditionCode, Flag

u32s = st.integers(min_value=0, max_value=MASK32)
u8s = st.integers(min_value=0, max_value=0xFF)


def flag(flags: int, which: Flag) -> bool:
    return bool(flags & (1 << which))


class TestAdd:
    @given(a=u32s, b=u32s)
    def test_result_is_wrapped_sum(self, a, b):
        result, _ = F.alu_add(a, b, 0)
        assert result == u32(a + b)

    @given(a=u32s, b=u32s)
    def test_carry_flag(self, a, b):
        _, flags = F.alu_add(a, b, 0)
        assert flag(flags, Flag.CF) == (a + b > MASK32)

    @given(a=u32s, b=u32s)
    def test_overflow_flag(self, a, b):
        _, flags = F.alu_add(a, b, 0)
        signed_sum = to_signed32(a) + to_signed32(b)
        assert flag(flags, Flag.OF) == not_in_range(signed_sum)

    @given(a=u32s, b=u32s)
    def test_zero_and_sign(self, a, b):
        result, flags = F.alu_add(a, b, 0)
        assert flag(flags, Flag.ZF) == (result == 0)
        assert flag(flags, Flag.SF) == bool(result & 0x80000000)

    def test_byte_width(self):
        result, flags = F.alu_add(0xFF, 1, 0, width=8)
        assert result == 0
        assert flag(flags, Flag.CF)
        assert flag(flags, Flag.ZF)


def not_in_range(signed_value: int) -> bool:
    return not (-0x80000000 <= signed_value <= 0x7FFFFFFF)


class TestSub:
    @given(a=u32s, b=u32s)
    def test_result(self, a, b):
        result, _ = F.alu_sub(a, b, 0)
        assert result == u32(a - b)

    @given(a=u32s, b=u32s)
    def test_borrow(self, a, b):
        _, flags = F.alu_sub(a, b, 0)
        assert flag(flags, Flag.CF) == (b > a)

    @given(a=u32s, b=u32s)
    def test_overflow(self, a, b):
        _, flags = F.alu_sub(a, b, 0)
        assert flag(flags, Flag.OF) == not_in_range(to_signed32(a) - to_signed32(b))

    @given(a=u32s)
    def test_compare_equal_sets_zf(self, a):
        _, flags = F.alu_sub(a, a, 0)
        assert flag(flags, Flag.ZF)
        assert not flag(flags, Flag.CF)


class TestLogic:
    @given(a=u32s, b=u32s, op=st.sampled_from(["and", "or", "xor"]))
    def test_clears_cf_of(self, a, b, op):
        _, flags = F.alu_logic(op, a, b, (1 << Flag.CF) | (1 << Flag.OF))
        assert not flag(flags, Flag.CF)
        assert not flag(flags, Flag.OF)

    @given(a=u32s, b=u32s)
    def test_results(self, a, b):
        assert F.alu_logic("and", a, b, 0)[0] == (a & b)
        assert F.alu_logic("or", a, b, 0)[0] == (a | b)
        assert F.alu_logic("xor", a, b, 0)[0] == (a ^ b)


class TestIncDec:
    @given(a=u32s, carry=st.booleans())
    def test_inc_preserves_cf(self, a, carry):
        flags_in = (1 << Flag.CF) if carry else 0
        _, flags = F.alu_inc(a, flags_in)
        assert flag(flags, Flag.CF) == carry

    @given(a=u32s, carry=st.booleans())
    def test_dec_preserves_cf(self, a, carry):
        flags_in = (1 << Flag.CF) if carry else 0
        _, flags = F.alu_dec(a, flags_in)
        assert flag(flags, Flag.CF) == carry

    def test_inc_overflow(self):
        result, flags = F.alu_inc(0x7FFFFFFF, 0)
        assert result == 0x80000000
        assert flag(flags, Flag.OF)

    def test_dec_underflow_to_max_signed(self):
        result, flags = F.alu_dec(0x80000000, 0)
        assert result == 0x7FFFFFFF
        assert flag(flags, Flag.OF)


class TestNeg:
    @given(a=u32s)
    def test_neg_result(self, a):
        result, flags = F.alu_neg(a, 0)
        assert result == u32(-a)
        assert flag(flags, Flag.CF) == (a != 0)


class TestShifts:
    @given(a=u32s, count=st.integers(min_value=1, max_value=31))
    def test_shl_result(self, a, count):
        result, _ = F.alu_shl(a, count, 0)
        assert result == u32(a << count)

    @given(a=u32s, count=st.integers(min_value=1, max_value=31))
    def test_shr_result(self, a, count):
        result, _ = F.alu_shr(a, count, 0)
        assert result == a >> count

    @given(a=u32s, count=st.integers(min_value=1, max_value=31))
    def test_sar_result(self, a, count):
        result, _ = F.alu_sar(a, count, 0)
        assert result == u32(to_signed32(a) >> count)

    @given(a=u32s, flags_in=st.integers(min_value=0, max_value=0xFFF))
    def test_zero_count_preserves_flags(self, a, flags_in):
        for shift in (F.alu_shl, F.alu_shr, F.alu_sar):
            result, flags = shift(a, 0, flags_in)
            assert result == a
            assert flags == flags_in

    def test_shl_carry_out(self):
        _, flags = F.alu_shl(0x80000000, 1, 0)
        assert flag(flags, Flag.CF)
        _, flags = F.alu_shl(0x40000000, 1, 0)
        assert not flag(flags, Flag.CF)

    def test_shr_carry_out(self):
        _, flags = F.alu_shr(1, 1, 0)
        assert flag(flags, Flag.CF)


class TestMultiply:
    @given(a=u32s, b=u32s)
    def test_imul_truncates(self, a, b):
        result, _ = F.alu_imul(a, b, 0)
        assert result == u32(to_signed32(a) * to_signed32(b))

    @given(a=u32s, b=u32s)
    def test_imul_overflow_flag(self, a, b):
        _, flags = F.alu_imul(a, b, 0)
        assert flag(flags, Flag.CF) == not_in_range(to_signed32(a) * to_signed32(b))
        assert flag(flags, Flag.CF) == flag(flags, Flag.OF)

    @given(a=u32s, b=u32s)
    def test_mul_wide(self, a, b):
        low, high, flags = F.alu_mul_wide(a, b, 0)
        assert (high << 32) | low == a * b
        assert flag(flags, Flag.CF) == (high != 0)


class TestConditions:
    def test_signed_comparison_conditions(self):
        # 5 < 7 signed
        _, flags = F.alu_sub(5, 7, 0)
        assert F.evaluate_condition(ConditionCode.L, flags)
        assert F.evaluate_condition(ConditionCode.LE, flags)
        assert not F.evaluate_condition(ConditionCode.G, flags)
        assert not F.evaluate_condition(ConditionCode.GE, flags)

    def test_unsigned_comparison_conditions(self):
        # 0xFFFFFFFF > 1 unsigned but -1 < 1 signed
        _, flags = F.alu_sub(0xFFFFFFFF, 1, 0)
        assert F.evaluate_condition(ConditionCode.A, flags)
        assert not F.evaluate_condition(ConditionCode.B, flags)
        assert F.evaluate_condition(ConditionCode.L, flags)

    def test_equality(self):
        _, flags = F.alu_sub(42, 42, 0)
        assert F.evaluate_condition(ConditionCode.E, flags)
        assert not F.evaluate_condition(ConditionCode.NE, flags)
        assert F.evaluate_condition(ConditionCode.LE, flags)
        assert F.evaluate_condition(ConditionCode.GE, flags)

    @given(a=u32s, b=u32s)
    def test_condition_pairs_are_complements(self, a, b):
        _, flags = F.alu_sub(a, b, 0)
        for cc_true, cc_false in [
            (ConditionCode.E, ConditionCode.NE),
            (ConditionCode.B, ConditionCode.AE),
            (ConditionCode.BE, ConditionCode.A),
            (ConditionCode.L, ConditionCode.GE),
            (ConditionCode.LE, ConditionCode.G),
            (ConditionCode.S, ConditionCode.NS),
            (ConditionCode.O, ConditionCode.NO),
            (ConditionCode.P, ConditionCode.NP),
        ]:
            assert F.evaluate_condition(cc_true, flags) != F.evaluate_condition(cc_false, flags)

    @given(a=u32s, b=u32s)
    def test_conditions_match_python_comparisons(self, a, b):
        _, flags = F.alu_sub(a, b, 0)
        sa, sb = to_signed32(a), to_signed32(b)
        assert F.evaluate_condition(ConditionCode.E, flags) == (a == b)
        assert F.evaluate_condition(ConditionCode.B, flags) == (a < b)
        assert F.evaluate_condition(ConditionCode.A, flags) == (a > b)
        assert F.evaluate_condition(ConditionCode.BE, flags) == (a <= b)
        assert F.evaluate_condition(ConditionCode.L, flags) == (sa < sb)
        assert F.evaluate_condition(ConditionCode.G, flags) == (sa > sb)
        assert F.evaluate_condition(ConditionCode.LE, flags) == (sa <= sb)
        assert F.evaluate_condition(ConditionCode.GE, flags) == (sa >= sb)

"""Phase profiler: nesting, conservation, null-sink behaviour, merging,
and the determinism invariant (profiling never changes results)."""

import os

import pytest

from repro.guest.assembler import assemble
from repro.morph.config import PRESETS
from repro.obs import prof
from repro.obs.prof import (
    NULL_PROFILER,
    PhaseProfiler,
    collapsed_stacks,
    conservation_violations,
    merge_profiles,
    phase_totals,
    render_profile,
    self_times,
)
from repro.vm.timing import TimingVM


def _fake_clock(step=10):
    """A deterministic clock advancing ``step`` ns per read."""
    state = {"now": 0}

    def clock():
        state["now"] += step
        return state["now"]

    return clock


class TestPhaseProfiler:
    def test_nested_phases_record_path_keys(self):
        p = PhaseProfiler(clock=_fake_clock())
        with p.phase("run"):
            with p.phase("translate"):
                with p.phase("decode"):
                    pass
            with p.phase("translate"):
                pass
        paths = p.snapshot()["paths"]
        assert set(paths) == {"run", "run;translate", "run;translate;decode"}
        assert paths["run;translate"]["calls"] == 2
        assert paths["run"]["calls"] == 1

    def test_add_books_under_current_path(self):
        p = PhaseProfiler(clock=_fake_clock())
        with p.phase("run"):
            p.add("memsys", 500)
            p.add("memsys", 250)
        p.add("memsys", 1)  # outside any phase: a root entry
        paths = p.snapshot()["paths"]
        assert paths["run;memsys"] == {"ns": 750, "calls": 2}
        assert paths["memsys"] == {"ns": 1, "calls": 1}

    def test_enter_exit_match_with_statement(self):
        p = PhaseProfiler(clock=_fake_clock())
        p.enter("a")
        p.enter("b")
        p.exit()
        p.exit()
        assert set(p.snapshot()["paths"]) == {"a", "a;b"}

    def test_child_time_contained_in_parent(self):
        p = PhaseProfiler(clock=_fake_clock())
        with p.phase("outer"):
            with p.phase("inner"):
                pass
        paths = p.snapshot()["paths"]
        assert paths["outer"]["ns"] >= paths["outer;inner"]["ns"]
        assert conservation_violations(p.snapshot()) == []

    def test_clear_refuses_with_open_phases(self):
        p = PhaseProfiler(clock=_fake_clock())
        p.enter("open")
        with pytest.raises(RuntimeError):
            p.clear()
        p.exit()
        p.clear()
        assert p.snapshot()["paths"] == {}

    def test_snapshot_paths_sorted(self):
        p = PhaseProfiler(clock=_fake_clock())
        for name in ("zeta", "alpha", "mid"):
            with p.phase(name):
                pass
        assert list(p.snapshot()["paths"]) == ["alpha", "mid", "zeta"]


class TestNullProfiler:
    def test_disabled_and_inert(self):
        assert NULL_PROFILER.enabled is False
        with NULL_PROFILER.phase("anything"):
            NULL_PROFILER.add("x", 123)
        NULL_PROFILER.enter("y")
        NULL_PROFILER.exit()
        assert NULL_PROFILER.snapshot() == {}

    def test_phase_returns_shared_context(self):
        assert NULL_PROFILER.phase("a") is NULL_PROFILER.phase("b")

    def test_active_defaults_to_null_without_env(self, monkeypatch):
        monkeypatch.delenv(prof.ENABLE_ENV, raising=False)
        assert not prof.enabled_by_env()

    def test_set_profiler_roundtrip(self):
        installed = PhaseProfiler()
        previous = prof.set_profiler(installed)
        try:
            assert prof.active() is installed
        finally:
            prof.set_profiler(previous)
        assert prof.active() is previous


class TestSnapshotAlgebra:
    def _snap(self, pairs):
        return {
            "clock": "perf_counter_ns",
            "paths": {path: {"ns": ns, "calls": calls} for path, ns, calls in pairs},
        }

    def test_merge_sums_and_sorts(self):
        a = self._snap([("run", 100, 1), ("run;x", 40, 2)])
        b = self._snap([("run", 50, 1), ("run;y", 10, 1)])
        merged = merge_profiles([a, b])
        assert merged["paths"]["run"] == {"ns": 150, "calls": 2}
        assert list(merged["paths"]) == ["run", "run;x", "run;y"]

    def test_merge_order_independent(self):
        snaps = [
            self._snap([("run", 7, 1), ("run;a", 3, 1)]),
            self._snap([("run", 11, 2)]),
            self._snap([("run;a", 5, 4), ("other", 1, 1)]),
        ]
        forward = merge_profiles(snaps)
        backward = merge_profiles(list(reversed(snaps)))
        assert forward == backward

    def test_self_times_subtract_children(self):
        snap = self._snap([("run", 100, 1), ("run;a", 30, 1), ("run;b", 50, 1)])
        selfs = self_times(snap)
        assert selfs["run"] == 20
        assert selfs["run;a"] == 30

    def test_self_times_clamped_at_zero(self):
        snap = self._snap([("run", 10, 1), ("run;a", 30, 1)])
        assert self_times(snap)["run"] == 0

    def test_collapsed_stacks_format(self):
        snap = self._snap([("run", 5_000_000, 1), ("run;a", 2_000_000, 1)])
        lines = collapsed_stacks(snap).splitlines()
        assert "run 3000" in lines
        assert "run;a 2000" in lines

    def test_conservation_flags_overfull_parent(self):
        snap = self._snap([("run", 100, 1), ("run;a", 2_000_000, 1)])
        problems = conservation_violations(snap)
        assert problems and "run" in problems[0]

    def test_conservation_flags_orphans(self):
        snap = self._snap([("run;a", 10, 1)])
        problems = conservation_violations(snap)
        assert problems and "orphan" in problems[0]

    def test_phase_totals_fold_leaves_across_parents(self):
        snap = self._snap(
            [("run;interpreter;memsys", 10, 2), ("run;jit.run;memsys", 5, 1)]
        )
        totals = phase_totals(snap)
        assert totals["memsys"] == {"ns": 15, "calls": 3}

    def test_render_profile_empty(self):
        assert "no profile data" in render_profile({"paths": {}})


HOT_LOOP = """
_start:
    mov ecx, 120
loop:
    add ebx, ecx
    mov [scratch], ebx
    add ebx, [scratch]
    sub ecx, 1
    jnz loop
    mov eax, 1
    and ebx, 255
    int 0x80
.data
scratch: dd 0
"""


def _run_vm(jit):
    program = assemble(HOT_LOOP)
    return TimingVM(program, PRESETS["speculative_4"], jit=jit).run()


class TestProfiledRuns:
    """End-to-end: the instrumentation obeys the profiler's laws."""

    @pytest.mark.parametrize("jit", [False, True])
    def test_results_identical_with_profiling(self, jit):
        baseline = _run_vm(jit)
        previous = prof.set_profiler(PhaseProfiler())
        try:
            profiled = _run_vm(jit)
        finally:
            prof.set_profiler(previous)
        assert profiled == baseline

    def test_phase_time_conservation(self):
        profiler = PhaseProfiler()
        previous = prof.set_profiler(profiler)
        try:
            _run_vm(jit=True)
        finally:
            prof.set_profiler(previous)
        snapshot = profiler.snapshot()
        assert snapshot["paths"], "profiled run recorded nothing"
        assert conservation_violations(snapshot) == []

    def test_taxonomy_phases_present(self):
        profiler = PhaseProfiler()
        previous = prof.set_profiler(profiler)
        try:
            _run_vm(jit=True)
        finally:
            prof.set_profiler(previous)
        leaves = set(phase_totals(profiler.snapshot()))
        for expected in ("translate", "decode", "codegen", "memsys",
                         "jit.compile", "jit.run"):
            assert expected in leaves, f"no {expected} phase recorded"

    def test_env_enables_profiling(self, monkeypatch):
        monkeypatch.setenv(prof.ENABLE_ENV, "1")
        assert prof.enabled_by_env()
        monkeypatch.setenv(prof.ENABLE_ENV, "off")
        assert not prof.enabled_by_env()

    def test_null_profiler_costs_nothing_measurable(self):
        # the perf gate proper lives in benchmarks/perf_smoke.py; this
        # is the structural half — with profiling off, instrumented
        # components hold the shared null object, and the null phase is
        # one shared context manager (no per-call allocation)
        if os.environ.get(prof.ENABLE_ENV):
            pytest.skip("REPRO_PROF set in this environment")
        program = assemble(HOT_LOOP)
        vm = TimingVM(program, PRESETS["speculative_4"], jit=True)
        assert vm._prof is NULL_PROFILER
        assert vm._prof.phase("interpreter") is vm._prof.phase("jit.run")

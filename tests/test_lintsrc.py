"""lint-src: the determinism/soundness AST lint over simulator sources."""

import textwrap

from repro.verify.lintsrc import lint_file, lint_tree


def _lint_snippet(tmp_path, code, name="mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(code))
    return [(f.code, f.severity.name) for f in lint_file(path, name)]


class TestRules:
    def test_set_iteration_in_for(self, tmp_path):
        found = _lint_snippet(tmp_path, """
            def f(items):
                out = []
                for x in set(items):
                    out.append(x)
                return out
        """)
        assert ("set-iteration", "ERROR") in found

    def test_set_union_iteration(self, tmp_path):
        found = _lint_snippet(tmp_path, """
            def f(a, b):
                return [x for x in set(a) | set(b)]
        """)
        assert ("set-iteration", "ERROR") in found

    def test_list_of_set_materialization(self, tmp_path):
        found = _lint_snippet(tmp_path, """
            def f(a):
                return list({x for x in a})
        """)
        assert ("set-iteration", "ERROR") in found

    def test_sorted_set_is_fine(self, tmp_path):
        found = _lint_snippet(tmp_path, """
            def f(a, b):
                return sorted(set(a) | set(b))
        """)
        assert found == []

    def test_dict_iteration_is_fine(self, tmp_path):
        found = _lint_snippet(tmp_path, """
            def f(d, e):
                return [k for k in {**d, **e}]
        """)
        assert found == []

    def test_wall_clock(self, tmp_path):
        found = _lint_snippet(tmp_path, """
            import time
            def stamp(row):
                row["when"] = time.time()
        """)
        assert ("wall-clock", "ERROR") in found

    def test_perf_counter_is_fine(self, tmp_path):
        found = _lint_snippet(tmp_path, """
            import time
            def measure():
                return time.perf_counter()
        """)
        assert found == []

    def test_global_random(self, tmp_path):
        found = _lint_snippet(tmp_path, """
            import random
            def pick(items):
                return random.choice(items)
        """)
        assert ("global-random", "ERROR") in found

    def test_seeded_random_instance_is_fine(self, tmp_path):
        found = _lint_snippet(tmp_path, """
            import random
            def pick(items, seed):
                return random.Random(seed).choice(items)
        """)
        assert found == []

    def test_random_in_prng_module_is_fine(self, tmp_path):
        path = tmp_path / "prng.py"
        path.write_text("import random\ndef draw():\n    return random.getrandbits(32)\n")
        assert lint_file(path, "src/repro/common/prng.py") == []

    def test_mutable_default_arg(self, tmp_path):
        found = _lint_snippet(tmp_path, """
            def f(x, cache={}):
                return cache.setdefault(x, x * 2)
        """)
        assert ("mutable-default-arg", "ERROR") in found

    def test_shared_cache_mutation_in_worker_module(self, tmp_path):
        found = _lint_snippet(tmp_path, """
            from concurrent.futures import ProcessPoolExecutor
            _CACHE = {}
            def worker(item):
                _CACHE[item] = item * 2
                return _CACHE[item]
        """)
        assert ("shared-cache-mutation", "ERROR") in found

    def test_module_global_without_concurrency_is_fine(self, tmp_path):
        found = _lint_snippet(tmp_path, """
            _CACHE = {}
            def intern(item):
                _CACHE[item] = item * 2
                return _CACHE[item]
        """)
        assert found == []

    def test_non_atomic_write_in_worker_module(self, tmp_path):
        found = _lint_snippet(tmp_path, """
            import threading
            def publish(path, doc):
                with open(path, "w") as fh:
                    fh.write(doc)
        """)
        assert ("non-atomic-write", "ERROR") in found

    def test_non_atomic_write_in_harness_module(self, tmp_path):
        path = tmp_path / "store.py"
        path.write_text(
            "def publish(path, doc):\n"
            "    with open(path, 'w') as fh:\n"
            "        fh.write(doc)\n"
        )
        found = [(f.code, f.severity.name)
                 for f in lint_file(path, "src/repro/harness/store.py")]
        assert ("non-atomic-write", "ERROR") in found

    def test_write_with_os_replace_is_fine(self, tmp_path):
        found = _lint_snippet(tmp_path, """
            import os
            import threading
            def publish(path, doc):
                with open(path + ".tmp", "w") as fh:
                    fh.write(doc)
                os.replace(path + ".tmp", path)
        """)
        assert found == []

    def test_replace_in_other_function_does_not_excuse(self, tmp_path):
        found = _lint_snippet(tmp_path, """
            import os
            import threading
            def publish(path, doc):
                with open(path, "w") as fh:
                    fh.write(doc)
            def unrelated(a, b):
                os.replace(a, b)
        """)
        assert ("non-atomic-write", "ERROR") in found

    def test_fdopen_staging_is_fine(self, tmp_path):
        found = _lint_snippet(tmp_path, """
            import os
            import tempfile
            import threading
            def publish(path, doc):
                fd, tmp = tempfile.mkstemp()
                with os.fdopen(fd, "w") as fh:
                    fh.write(doc)
                os.replace(tmp, path)
        """)
        assert found == []

    def test_read_mode_open_is_fine(self, tmp_path):
        found = _lint_snippet(tmp_path, """
            import threading
            def slurp(path):
                with open(path) as fh:
                    return fh.read()
        """)
        assert found == []

    def test_plain_module_write_is_fine(self, tmp_path):
        # no concurrency, not under harness/: single-writer, no readers
        found = _lint_snippet(tmp_path, """
            def dump(path, doc):
                with open(path, "w") as fh:
                    fh.write(doc)
        """)
        assert found == []


class TestTree:
    def test_repo_tree_is_clean(self):
        findings = lint_tree()
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_allowlist_suppresses(self, tmp_path):
        src = tmp_path / "src" / "repro"
        src.mkdir(parents=True)
        (src / "bad.py").write_text("def f(x, cache=[]):\n    return cache\n")
        assert len(lint_tree(root=tmp_path)) == 1
        (tmp_path / "lint-src-allowlist.txt").write_text(
            "src/repro/bad.py::mutable-default-arg  # test fixture\n"
        )
        assert lint_tree(root=tmp_path) == []

    def test_stale_allowlist_entry_warns(self, tmp_path):
        src = tmp_path / "src" / "repro"
        src.mkdir(parents=True)
        (src / "fine.py").write_text("def f(x):\n    return x\n")
        (tmp_path / "lint-src-allowlist.txt").write_text(
            "src/repro/fine.py::wall-clock  # no longer true\n"
        )
        findings = lint_tree(root=tmp_path)
        assert [(f.code, f.severity.name) for f in findings] == [
            ("stale-allowlist", "WARNING")
        ]
        assert "src/repro/fine.py::wall-clock" in findings[0].message

    def test_live_allowlist_entry_does_not_warn(self, tmp_path):
        src = tmp_path / "src" / "repro"
        src.mkdir(parents=True)
        (src / "bad.py").write_text("def f(x, cache=[]):\n    return cache\n")
        (tmp_path / "lint-src-allowlist.txt").write_text(
            "src/repro/bad.py::mutable-default-arg  # test fixture\n"
        )
        assert lint_tree(root=tmp_path) == []

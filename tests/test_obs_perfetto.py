"""Perfetto trace_event export: pairing, schema validation, golden file.

Regenerate the golden with::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_obs_perfetto.py
"""

import json
import os
from pathlib import Path

from repro.guest.assembler import assemble
from repro.morph.config import PRESETS
from repro.obs.events import Tracer
from repro.obs.perfetto import (
    add_profile_lanes,
    to_perfetto,
    validate_trace_events,
    write_trace,
)
from repro.vm.timing import TimingVM

DATA_DIR = Path(__file__).parent / "data"
GOLDEN_PATH = DATA_DIR / "perfetto_golden.json"


def _synthetic_tracer():
    tracer = Tracer()
    tracer.emit(100, "specq", "enqueue", "manager", pc=0x100, qlen=1)
    tracer.emit(110, "translate", "start", "slave0", pc=0x100)
    tracer.emit(150, "specq", "dequeue", "manager", pc=0x200, qlen=0)
    tracer.emit(400, "translate", "end", "slave0", pc=0x100, cycles=290)
    tracer.emit(500, "codecache", "hit", "execution", level="l1", pc=0x100)
    tracer.emit(600, "translate", "start", "slave1", pc=0x300)  # never ends
    return tracer


class TestToPerfetto:
    def test_thread_metadata_one_per_tile(self):
        doc = to_perfetto(_synthetic_tracer().events(), process_name="test")
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["name"]: e["args"]["name"] for e in meta}
        assert names["process_name"] == "test"
        thread_names = sorted(
            e["args"]["name"] for e in meta if e["name"] == "thread_name"
        )
        assert thread_names == ["execution", "manager", "slave0", "slave1"]
        # execution gets the lowest tid: it is the headline timeline
        tids = {
            e["args"]["name"]: e["tid"] for e in meta if e["name"] == "thread_name"
        }
        assert tids["execution"] < tids["manager"] < tids["slave0"]

    def test_translate_pairs_become_complete_events(self):
        doc = to_perfetto(_synthetic_tracer().events())
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == 1
        (event,) = complete
        assert event["name"] == "translate 0x100"
        assert event["ts"] == 110
        assert event["dur"] == 290

    def test_unpaired_start_becomes_instant(self):
        doc = to_perfetto(_synthetic_tracer().events())
        leftovers = [
            e for e in doc["traceEvents"]
            if e["ph"] == "i" and e["name"] == "translate.start"
        ]
        assert len(leftovers) == 1
        assert leftovers[0]["ts"] == 600

    def test_specq_events_drive_counter_track(self):
        doc = to_perfetto(_synthetic_tracer().events())
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert [c["args"]["depth"] for c in counters] == [1, 0]
        assert all(c["name"] == "specq.depth" for c in counters)

    def test_synthetic_doc_validates_clean(self):
        doc = to_perfetto(_synthetic_tracer().events())
        assert validate_trace_events(doc) == []

    def test_empty_trace_still_validates(self):
        doc = to_perfetto([])
        assert validate_trace_events(doc) == []
        assert [e["ph"] for e in doc["traceEvents"]] == ["M"]


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_trace_events([]) != []
        assert validate_trace_events({"traceEvents": "nope"}) != []

    def test_rejects_unknown_phase(self):
        doc = {"traceEvents": [{"ph": "Z", "name": "x", "pid": 1, "tid": 1, "ts": 0}]}
        problems = validate_trace_events(doc)
        assert any("unknown phase" in p for p in problems)

    def test_rejects_missing_ts(self):
        doc = {"traceEvents": [{"ph": "i", "name": "x", "pid": 1, "tid": 1}]}
        problems = validate_trace_events(doc)
        assert any("'ts'" in p for p in problems)

    def test_rejects_backwards_timestamps_per_thread(self):
        doc = {
            "traceEvents": [
                {"ph": "i", "s": "t", "name": "a", "pid": 1, "tid": 1, "ts": 100},
                {"ph": "i", "s": "t", "name": "b", "pid": 1, "tid": 2, "ts": 5},
                {"ph": "i", "s": "t", "name": "c", "pid": 1, "tid": 1, "ts": 50},
            ]
        }
        problems = validate_trace_events(doc)
        assert len(problems) == 1
        assert "goes backwards" in problems[0]

    def test_rejects_negative_duration(self):
        doc = {
            "traceEvents": [
                {"ph": "X", "name": "x", "pid": 1, "tid": 1, "ts": 10, "dur": -1}
            ]
        }
        problems = validate_trace_events(doc)
        assert any("dur" in p for p in problems)

    def test_rejects_empty_counter_args(self):
        doc = {
            "traceEvents": [
                {"ph": "C", "name": "depth", "pid": 1, "tid": 1, "ts": 0, "args": {}}
            ]
        }
        problems = validate_trace_events(doc)
        assert any("non-empty args" in p for p in problems)

    def test_rejects_non_numeric_counter_args(self):
        for bad in ("fast", True, None):
            doc = {
                "traceEvents": [
                    {
                        "ph": "C", "name": "depth", "pid": 1, "tid": 1,
                        "ts": 0, "args": {"v": bad},
                    }
                ]
            }
            problems = validate_trace_events(doc)
            assert any("numeric" in p for p in problems), f"accepted {bad!r}"

    def test_rejects_prof_lane_without_thread_name(self):
        doc = {
            "traceEvents": [
                {
                    "ph": "C", "name": "prof.codegen", "pid": 2, "tid": 1,
                    "ts": 0, "args": {"ms": 1.5},
                }
            ]
        }
        problems = validate_trace_events(doc)
        assert any("thread_name" in p for p in problems)
        # the same lane with metadata is clean
        doc["traceEvents"].insert(
            0,
            {
                "ph": "M", "name": "thread_name", "pid": 2, "tid": 1,
                "args": {"name": "worker main"},
            },
        )
        assert validate_trace_events(doc) == []


def _profile_snapshot(pairs):
    return {
        "clock": "perf_counter_ns",
        "paths": {path: {"ns": ns, "calls": 1} for path, ns in pairs},
    }


class TestProfileLanes:
    def test_lanes_validate_and_carry_counters(self):
        doc = to_perfetto(_synthetic_tracer().events())
        add_profile_lanes(
            doc,
            {
                "12345": _profile_snapshot(
                    [("run", 9_000_000), ("run;interpreter", 5_000_000)]
                ),
                "aggregate": _profile_snapshot([("run", 20_000_000)]),
            },
        )
        assert validate_trace_events(doc) == []
        counters = [
            e for e in doc["traceEvents"]
            if e["ph"] == "C" and e["name"].startswith("prof.")
        ]
        assert counters, "no prof.* counter events emitted"
        assert all(e["pid"] == 2 for e in counters)
        assert all(isinstance(e["args"]["ms"], float) for e in counters)

    def test_one_lane_per_worker_with_names(self):
        doc = to_perfetto([])
        add_profile_lanes(
            doc,
            {
                "100": _profile_snapshot([("run", 1_000_000)]),
                "200": _profile_snapshot([("run", 2_000_000)]),
                "parent": _profile_snapshot([("run", 3_000_000)]),
            },
        )
        meta = [
            e for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name" and e["pid"] == 2
        ]
        assert sorted(e["args"]["name"] for e in meta) == [
            "worker 100", "worker 200", "worker parent",
        ]
        # lanes are disjoint tids under the profiler pid
        assert len({e["tid"] for e in meta}) == 3

    def test_leaf_totals_fold_across_parents(self):
        # the same leaf under two parents becomes one counter sample
        doc = to_perfetto([])
        add_profile_lanes(
            doc,
            {
                "w": _profile_snapshot(
                    [("run;interpreter;memsys", 1_000_000),
                     ("run;jit.run;memsys", 2_000_000)]
                )
            },
        )
        memsys = [
            e for e in doc["traceEvents"] if e.get("name") == "prof.memsys"
        ]
        assert len(memsys) == 1
        assert memsys[0]["args"]["ms"] == 3.0

    def test_profiler_process_does_not_disturb_tile_threads(self):
        # adding lanes to a real traced doc keeps it schema-clean and
        # leaves the simulated process untouched
        doc = to_perfetto(_synthetic_tracer().events())
        before = [e for e in doc["traceEvents"] if e.get("pid") == 1]
        add_profile_lanes(doc, {"w": _profile_snapshot([("run", 1_000)])})
        after = [e for e in doc["traceEvents"] if e.get("pid") == 1]
        assert before == after
        assert validate_trace_events(doc) == []

    def test_empty_profiles_add_only_process_metadata(self):
        doc = to_perfetto([])
        add_profile_lanes(doc, {})
        assert validate_trace_events(doc) == []
        added = [e for e in doc["traceEvents"] if e.get("pid") == 2]
        assert [e["ph"] for e in added] == ["M"]


HOT_LOOP = """
_start:
    mov ecx, 200
loop:
    add ebx, ecx
    sub ecx, 1
    jnz loop
    mov eax, 1
    and ebx, 255
    int 0x80
"""


class TestJitSpans:
    def test_jit_pair_becomes_complete_event(self):
        tracer = Tracer()
        tracer.emit(100, "jit", "trace_enter", "execution", pc=0x40)
        tracer.emit(900, "jit", "trace_exit", "execution", pc=0x40, blocks=3, reason="cold")
        doc = to_perfetto(tracer.events())
        assert validate_trace_events(doc) == []
        (span,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert span["name"] == "jit trace 0x40"
        assert span["cat"] == "jit"
        assert span["ts"] == 100
        assert span["dur"] == 800
        assert span["args"]["blocks"] == 3
        assert span["args"]["reason"] == "cold"

    def test_unpaired_trace_enter_becomes_instant(self):
        tracer = Tracer()
        tracer.emit(100, "jit", "trace_enter", "execution", pc=0x40)
        doc = to_perfetto(tracer.events())
        assert validate_trace_events(doc) == []
        (mark,) = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert mark["name"] == "jit.trace_enter"
        assert mark["ts"] == 100

    def test_hot_loop_run_emits_jit_spans(self):
        # end-to-end: a loop hot enough to compile and chain shows up
        # as coarse per-trace spans (one per entry/exit, not per block)
        program = assemble(HOT_LOOP)
        tracer = Tracer()
        vm = TimingVM(program, PRESETS["speculative_4"], tracer=tracer, jit=True)
        vm.run()
        doc = to_perfetto(tracer.events())
        assert validate_trace_events(doc) == []
        spans = [
            e for e in doc["traceEvents"] if e["ph"] == "X" and e["cat"] == "jit"
        ]
        assert spans, "hot loop never entered a compiled trace"
        # the whole 200-iteration loop ran inside a handful of traces
        assert sum(e["args"]["blocks"] for e in spans) >= 100


def _traced_workload_doc():
    source = (DATA_DIR / "trace_workload.asm").read_text()
    program = assemble(source, name="trace_workload")
    tracer = Tracer()
    # jit pinned off: the golden must not depend on the REPRO_JIT env
    # knob (jit trace events are covered by TestJitSpans above)
    vm = TimingVM(program, PRESETS["speculative_4"], tracer=tracer, jit=False)
    result = vm.run()
    assert result.exit_code == 36  # the workload's checksum: run went as scripted
    return to_perfetto(
        tracer.events(),
        metadata={"workload": "trace_workload", "config": "speculative_4"},
    )


class TestGoldenExport:
    def test_small_workload_matches_golden(self, tmp_path):
        doc = _traced_workload_doc()
        assert validate_trace_events(doc) == []
        if os.environ.get("REGEN_GOLDEN"):
            write_trace(str(GOLDEN_PATH), doc)
        golden = json.loads(GOLDEN_PATH.read_text())
        # compare via a round-trip so both sides have pure-JSON types
        assert json.loads(json.dumps(doc, sort_keys=True)) == golden, (
            "Perfetto export changed; if intentional, regenerate with "
            "REGEN_GOLDEN=1 and review the golden diff"
        )
        # the golden on disk is exactly what write_trace produces
        out = tmp_path / "roundtrip.json"
        write_trace(str(out), doc)
        assert out.read_text() == GOLDEN_PATH.read_text()

    def test_golden_run_covers_headline_categories(self):
        doc = _traced_workload_doc()
        categories = {e.get("cat") for e in doc["traceEvents"]}
        for category in ("translate", "codecache", "specq", "net", "mem"):
            assert category in categories, f"golden run has no {category} events"

    def test_timestamps_monotone_per_tile_thread(self):
        doc = _traced_workload_doc()
        last = {}
        for event in doc["traceEvents"]:
            if event["ph"] == "M":
                continue
            key = (event["pid"], event["tid"])
            assert event["ts"] >= last.get(key, 0)
            last[key] = event["ts"]

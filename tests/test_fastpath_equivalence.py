"""Block fast path vs per-step execution: exact equivalence.

``GuestInterpreter.run_block_at`` must be indistinguishable from the
same number of ``step()`` calls — identical architectural state, flags,
instruction counts and exit codes — on the full workload suite and on
hand-built edge cases (mid-block exits, control-flow deviation from the
pre-resolved plan, self-modifying code).
"""

import pytest

from repro.guest.assembler import assemble
from repro.guest.interpreter import GuestInterpreter, StepEvent
from repro.workloads import SPECINT_NAMES, build_workload

SCALE = 0.05

#: Chunk sizes stressing plan reuse, fallback and mid-plan exits.
CHUNKS = (1, 2, 3, 5, 8, 13)


def _run_stepwise(program, max_instructions=10_000_000):
    interp = GuestInterpreter.for_program(program)
    interp.run(max_instructions=max_instructions)
    return interp


def _run_blockwise(program, max_instructions=10_000_000):
    """Drive the program exclusively through the block fast path."""
    interp = GuestInterpreter.for_program(program)
    executed = 0
    chunk_index = 0
    while interp.exit_code is None:
        count = CHUNKS[chunk_index % len(CHUNKS)]
        chunk_index += 1
        executed += interp.run_block_at(interp.state.eip, count)
        if executed > max_instructions:
            raise AssertionError("fast path ran away")
    return interp


@pytest.mark.parametrize("name", SPECINT_NAMES)
def test_workload_suite_equivalence(name):
    stepwise = _run_stepwise(build_workload(name, scale=SCALE))
    blockwise = _run_blockwise(build_workload(name, scale=SCALE))
    assert blockwise.exit_code == stepwise.exit_code
    assert blockwise.stats["instructions"] == stepwise.stats["instructions"]
    assert blockwise.state.snapshot() == stepwise.state.snapshot()
    assert blockwise.stats.as_dict() == stepwise.stats.as_dict()


def test_plan_deviation_falls_back_to_stepping():
    """A taken branch mid-plan must not execute the stale straight-line
    tail: the fast path follows EIP exactly like step() does."""
    source = """
        mov eax, 0
        cmp eax, 0
        je  done
        mov eax, 111
        mov eax, 222
    done:
        mov ebx, 7
        mov eax, 1
        int 0x80
    """
    program = assemble(source)
    fast = GuestInterpreter.for_program(program)
    # one oversized "block": the plan covers the not-taken path, but
    # execution branches away after 3 instructions
    fast.run_block_at(fast.state.eip, 8)
    slow = GuestInterpreter.for_program(program)
    while slow.exit_code is None:
        slow.step()
    assert fast.exit_code == slow.exit_code == 7
    assert fast.state.snapshot() == slow.state.snapshot()
    assert fast.stats.as_dict() == slow.stats.as_dict()


def test_mid_block_exit_counts_exiting_instruction():
    source = """
        mov ecx, 5
        mov ebx, 3
        mov eax, 1
        int 0x80
        mov ecx, 9
    """
    program = assemble(source)
    interp = GuestInterpreter.for_program(program)
    executed = interp.run_block_at(interp.state.eip, 5)
    assert interp.exit_code == 3
    assert executed == 4  # the INT executes and counts; the tail doesn't
    assert interp.stats["instructions"] == 4


def test_exited_interpreter_executes_nothing():
    program = assemble("mov ebx, 0\n mov eax, 1\n int 0x80")
    interp = GuestInterpreter.for_program(program)
    while interp.exit_code is None:
        interp.step()
    assert interp.run_block_at(interp.state.eip, 4) == 0


def test_plans_invalidate_on_decode_cache_flush():
    program = assemble("mov eax, 2\n mov ebx, 0\n mov eax, 1\n int 0x80")
    interp = GuestInterpreter.for_program(program)
    interp.run_block_at(interp.state.eip, 1)
    assert interp._block_plans
    interp.invalidate_decode_cache()
    assert not interp._block_plans


def test_step_api_unchanged():
    program = assemble("mov ebx, 0\n mov eax, 1\n int 0x80")
    interp = GuestInterpreter.for_program(program)
    assert interp.step() is StepEvent.OK
    assert interp.step() is StepEvent.OK
    assert interp.step() is StepEvent.EXITED
    assert interp.exit_code == 0

"""Unit tests for the newer optimizer passes: value numbering, strength
reduction and cross-block flag-liveness peeking."""

from repro.guest.assembler import assemble
from repro.guest.isa import Flag
from repro.dbt.frontend import build_ir
from repro.dbt.ir import ALL_FLAGS_MASK, UOpKind, flag_mask
from repro.dbt.optimizer import (
    fold_constants,
    number_values,
    propagate_copies,
    reduce_strength,
    successor_flag_liveness,
)
from repro.vm.functional import FunctionalVM
from repro.guest.interpreter import GuestInterpreter


def ir_for(source: str):
    program = assemble(source)
    text = program.text

    def read(address, length):
        offset = address - text.address
        return text.data[offset : offset + length]

    return build_ir(read, program.entry), read, program


class TestValueNumbering:
    def test_duplicate_address_arithmetic_merges(self):
        # [ebx + ecx*4 + 8] computed twice -> one EA computation
        ir, _, _ = ir_for(
            "_start: mov eax, [ebx + ecx*4 + 8]\nadd edx, [ebx + ecx*4 + 8]\nhlt\n"
        )
        propagate_copies(ir)
        fold_constants(ir)
        before = sum(1 for u in ir.uops if u.kind in (UOpKind.ADD, UOpKind.SHL))
        removed = number_values(ir)
        after = sum(1 for u in ir.uops if u.kind in (UOpKind.ADD, UOpKind.SHL))
        assert removed >= 2
        assert after < before

    def test_redundant_load_merges(self):
        ir, _, _ = ir_for("_start: mov eax, [0x8400000]\nmov edx, [0x8400000]\nhlt\n")
        propagate_copies(ir)
        fold_constants(ir)
        number_values(ir)
        loads = [u for u in ir.uops if u.kind is UOpKind.LD]
        assert len(loads) == 1

    def test_store_kills_load_availability(self):
        ir, _, _ = ir_for(
            "_start: mov eax, [0x8400000]\nmov [0x8400004], ecx\nmov edx, [0x8400000]\nhlt\n"
        )
        propagate_copies(ir)
        fold_constants(ir)
        number_values(ir)
        loads = [u for u in ir.uops if u.kind is UOpKind.LD]
        assert len(loads) == 2  # no alias analysis: the store is a barrier

    def test_commutative_canonicalization(self):
        ir, _, _ = ir_for("_start: mov eax, ebx\nadd eax, ecx\nmov edx, ecx\nadd edx, ebx\nhlt\n")
        propagate_copies(ir)
        removed = number_values(ir)
        assert removed >= 1  # ebx+ecx == ecx+ebx

    def test_semantics_preserved_end_to_end(self):
        source = """
        _start:
            mov ecx, 3
            mov ebx_unused equ 0
            mov eax, [table + ecx*4]
            add eax, [table + ecx*4]
            mov ebx, eax
            and ebx, 255
            mov eax, 1
            int 0x80
        .data
        table: dd 10, 20, 30, 40
        """.replace("mov ebx_unused equ 0\n", "")
        program = assemble(source)
        golden = GuestInterpreter.for_program(assemble(source))
        assert FunctionalVM(program).run() == golden.run()


class TestStrengthReduction:
    def test_mul_by_power_of_two_becomes_shift(self):
        ir, _, _ = ir_for("_start: imul eax, 8\nhlt\n".replace("imul eax, 8", "mov ecx, 8\nimul eax, ecx"))
        propagate_copies(ir)
        fold_constants(ir)
        replaced = reduce_strength(ir)
        assert replaced == 1
        assert not [u for u in ir.uops if u.kind is UOpKind.MUL]
        assert [u for u in ir.uops if u.kind is UOpKind.SHL]

    def test_non_power_of_two_untouched(self):
        ir, _, _ = ir_for("_start: mov ecx, 7\nimul eax, ecx\nhlt\n")
        propagate_copies(ir)
        fold_constants(ir)
        assert reduce_strength(ir) == 0

    def test_differential_correctness(self):
        source = """
        _start:
            mov eax, 12345
            mov ecx, 16
            imul eax, ecx
            seto edx
            mov ebx, eax
            and ebx, 255
            mov eax, 1
            int 0x80
        """
        program = assemble(source)
        golden = GuestInterpreter.for_program(assemble(source))
        assert FunctionalVM(program).run() == golden.run()


class TestFlagPeek:
    def test_successor_overwrites_all_flags(self):
        # successor: add (writes all five) -> nothing live across the edge
        ir, read, program = ir_for("_start: jmp next\nnext: add eax, ebx\nhlt\n")
        live = successor_flag_liveness(read, [program.symbols["next"]])
        assert live == 0

    def test_successor_reads_zf(self):
        # je whose both paths land on an all-flag-writing add: only ZF
        # is observable across the edge
        ir, read, program = ir_for(
            "_start: jmp next\nnext: je after\nafter: add eax, ebx\nhlt\n"
        )
        live = successor_flag_liveness(read, [program.symbols["next"]])
        assert live & flag_mask([Flag.ZF])
        assert not live & flag_mask([Flag.CF])

    def test_inc_leaves_cf_live(self):
        # inc overwrites everything except CF; the following jc reads it
        ir, read, program = ir_for("_start: jmp next\nnext: inc eax\njb _start\nhlt\n")
        live = successor_flag_liveness(read, [program.symbols["next"]])
        assert live & flag_mask([Flag.CF])
        assert not live & flag_mask([Flag.ZF])

    def test_indirect_successor_is_fully_live(self):
        ir, read, program = ir_for("_start: jmp next\nnext: jmp eax\n")
        live = successor_flag_liveness(read, [program.symbols["next"]])
        assert live == ALL_FLAGS_MASK

    def test_dynamic_shift_cannot_kill(self):
        # shl by cl may preserve flags; a later jc still sees the old CF
        ir, read, program = ir_for(
            "_start: jmp next\nnext: shl eax, ecx\njb _start\nhlt\n"
        )
        live = successor_flag_liveness(read, [program.symbols["next"]])
        assert live & flag_mask([Flag.CF])

    def test_branchy_successors_union(self):
        source = """
        _start: jmp next
        next:
            je taken
            add eax, ebx        ; kills everything on fallthrough
            hlt
        taken:
            setb ecx            ; reads CF on taken path
            hlt
        """
        ir, read, program = ir_for(source)
        live = successor_flag_liveness(read, [program.symbols["next"]])
        assert live & flag_mask([Flag.ZF])  # je reads ZF
        assert live & flag_mask([Flag.CF])  # setb on one path

    def test_empty_successors_conservative(self):
        _, read, _ = ir_for("_start: hlt\n")
        assert successor_flag_liveness(read, []) == ALL_FLAGS_MASK

"""Tests for reconfiguration (morphing), the PIII model, the analysis
module and the timing VM."""

import pytest

from repro.analysis import decompose, expected_slowdown_floor, memory_slowdown_factor
from repro.guest.assembler import assemble
from repro.morph import PRESETS, QueueLengthPolicy, VirtualArchConfig
from repro.morph.policy import SHAPE_MEMORY_HEAVY, SHAPE_TRANSLATION_HEAVY
from repro.refmachine.intrinsics import EMULATOR_INTRINSICS, PIII_INTRINSICS
from repro.refmachine.pentium3 import PentiumIIIModel
from repro.vm.timing import run_timing


def program_for(source: str, name: str = "test"):
    program = assemble(source)
    program.name = name
    return program


LOOP_PROGRAM = """
_start:
    mov ecx, 300
    xor eax, eax
top:
    add eax, ecx
    mov [scratch], eax
    add eax, [scratch]
    dec ecx
    jnz top
    mov ebx, eax
    mov eax, 1
    int 0x80
.data
scratch: dd 0
"""


class TestVirtualArchConfig:
    def test_presets_cover_the_paper(self):
        for name in [
            "no_l15",
            "l15_64k",
            "l15_128k",
            "conservative_1",
            "speculative_1",
            "speculative_2",
            "speculative_4",
            "speculative_6",
            "speculative_9",
            "static_1mem_9trans",
            "static_4mem_6trans",
            "morph_threshold_15",
            "morph_threshold_0",
            "morph_threshold_5",
            "morph_noopt",
        ]:
            assert name in PRESETS

    def test_tile_budget_enforced(self):
        with pytest.raises(ValueError):
            VirtualArchConfig("too_big", translator_tiles=9, l2_bank_tiles=4)

    def test_with_replaces_fields(self):
        cfg = PRESETS["default"].with_(optimize=False, name="x")
        assert not cfg.optimize
        assert PRESETS["default"].optimize


class TestQueueLengthPolicy:
    def test_threshold_shapes(self):
        policy = QueueLengthPolicy(threshold=5)
        assert policy.desired_shape(6) == SHAPE_TRANSLATION_HEAVY
        assert policy.desired_shape(5) == SHAPE_MEMORY_HEAVY
        assert policy.desired_shape(0) == SHAPE_MEMORY_HEAVY

    def test_threshold_zero_is_eager(self):
        policy = QueueLengthPolicy(threshold=0)
        assert policy.desired_shape(1) == SHAPE_TRANSLATION_HEAVY

    def test_hysteresis_blocks_flapping(self):
        policy = QueueLengthPolicy(threshold=5, hysteresis_cycles=1000)
        assert policy.decide(0, 10, SHAPE_MEMORY_HEAVY) == SHAPE_TRANSLATION_HEAVY
        # immediately wanting to flip back is suppressed
        assert policy.decide(100, 0, SHAPE_TRANSLATION_HEAVY) is None
        assert policy.decide(2000, 0, SHAPE_TRANSLATION_HEAVY) == SHAPE_MEMORY_HEAVY

    def test_no_change_when_satisfied(self):
        policy = QueueLengthPolicy(threshold=5)
        assert policy.decide(10**9, 0, SHAPE_MEMORY_HEAVY) is None


class TestPentiumIIIModel:
    def test_ilp_reduces_compute_cycles(self):
        model = PentiumIIIModel()
        for _ in range(130):
            model.on_instruction()
        assert model.cycles == 100  # 130 / 1.3

    def test_cache_misses_add_stalls(self):
        model = PentiumIIIModel()
        model.on_access(0x1000, False)  # L1 miss, L2 miss
        assert model.memory_stall_cycles == PIII_INTRINSICS.l2_miss_latency - 3
        model.on_access(0x1000, False)  # now an L1 hit
        assert model.memory_stall_cycles == PIII_INTRINSICS.l2_miss_latency - 3


class TestAnalysis:
    def test_memory_factor_matches_paper(self):
        assert 3.5 <= memory_slowdown_factor() <= 4.3  # paper: 3.9

    def test_slowdown_floor_matches_paper(self):
        assert 5.0 <= expected_slowdown_floor() <= 6.0  # paper: 5.5

    def test_decomposition_rows(self):
        decomp = decompose(7.2)
        assert decomp.measured == 7.2
        assert 1.0 < decomp.residual_factor < 1.6  # paper: ~1.3 at the low end
        assert len(decomp.rows()) == 6

    def test_intrinsics_table_shape(self):
        assert len(EMULATOR_INTRINSICS.rows()) == 4
        assert EMULATOR_INTRINSICS.l1_hit_occupancy == 4
        assert PIII_INTRINSICS.l1_hit_occupancy == 1


class TestTimingVM:
    def test_functional_correctness_preserved(self):
        program = program_for(LOOP_PROGRAM)
        result = run_timing(program, PRESETS["default"])
        # same result as pure functional execution
        expected = sum(range(1, 301)) * 2 % 256  # eax doubles each iteration... no:
        # just check against the reference interpreter instead
        from repro.guest.interpreter import GuestInterpreter

        golden = GuestInterpreter.for_program(program_for(LOOP_PROGRAM))
        assert result.exit_code == golden.run()

    def test_slowdown_is_sane(self):
        program = program_for(LOOP_PROGRAM)
        result = run_timing(program, PRESETS["default"])
        assert 3.0 < result.slowdown < 60.0

    def test_conservative_is_not_faster_than_speculative_here(self):
        program = program_for(LOOP_PROGRAM)
        speculative = run_timing(program_for(LOOP_PROGRAM), PRESETS["speculative_4"])
        conservative = run_timing(program, PRESETS["conservative_1"])
        assert speculative.cycles <= conservative.cycles

    def test_morphing_reconfigures_and_completes(self):
        program = program_for(LOOP_PROGRAM)
        result = run_timing(program, PRESETS["morph_threshold_0"])
        assert result.exit_code == run_timing(program, PRESETS["default"]).exit_code
        assert result.reconfigurations >= 1

    def test_optimization_reduces_cycles(self):
        opt = run_timing(program_for(LOOP_PROGRAM), PRESETS["default"])
        noopt = run_timing(
            program_for(LOOP_PROGRAM), PRESETS["default"].with_(optimize=False, name="noopt")
        )
        assert opt.cycles < noopt.cycles

    def test_l2_metrics_populated(self):
        result = run_timing(program_for(LOOP_PROGRAM), PRESETS["default"])
        assert result.l2_code_accesses >= 1
        assert 0.0 <= result.l2_miss_rate <= 1.0
        assert result.l2_accesses_per_cycle < 0.01  # tiny loop: rare accesses

    def test_indirect_heavy_program(self):
        program = program_for(
            """
            _start:
                xor esi, esi
                xor edi, edi
            loop:
                mov eax, esi
                and eax, 1
                jmp [table + eax*4]
            even: add edi, 2
                jmp next
            odd:  add edi, 3
            next:
                inc esi
                cmp esi, 50
                jne loop
                mov ebx, edi
                mov eax, 1
                int 0x80
            .data
            table: dd even, odd
            """
        )
        result = run_timing(program, PRESETS["default"])
        assert result.exit_code == (25 * 2 + 25 * 3) % 256

    def test_stats_exported(self):
        result = run_timing(program_for(LOOP_PROGRAM), PRESETS["default"])
        assert "vm.blocks_executed" in result.stats
        assert "mem.accesses" in result.stats
        assert "spec.blocks_translated" in result.stats

"""Differential tests: FunctionalVM (full DBT pipeline) vs. the guest
reference interpreter.

Every program here is executed twice — once on the golden interpreter
and once through translate -> optimize -> codegen -> chain -> host
interpret — and the exit code, stdout, and final architectural state
must match bit for bit.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.guest.assembler import assemble
from repro.guest.interpreter import GuestFault, GuestInterpreter
from repro.guest.isa import Register
from repro.dbt.translator import TranslationConfig
from repro.vm.functional import FunctionalVM

EXIT = """
    mov ebx, eax
    mov eax, 1
    int 0x80
"""


def run_both(source: str, stdin: bytes = b"", optimize: bool = True):
    program = assemble(source)
    golden = GuestInterpreter.for_program(program, stdin=stdin)
    golden_exit = golden.run()

    vm = FunctionalVM(program, stdin=stdin, config=TranslationConfig(optimize=optimize))
    vm_exit = vm.run()

    assert vm_exit == golden_exit, "exit codes differ"
    assert vm.syscalls.stdout_text == golden.syscalls.stdout_text, "stdout differs"
    for reg in Register:
        assert vm.guest_reg(reg) == golden.state.regs[reg], f"{reg.name} differs"
    assert vm.guest_flags == golden.state.flags, "flags differ"
    return vm, golden


@pytest.mark.parametrize("optimize", [True, False], ids=["opt", "noopt"])
class TestDifferentialPrograms:
    def test_arithmetic_loop(self, optimize):
        run_both(
            f"""
            _start:
                mov ecx, 50
                xor eax, eax
            top:
                add eax, ecx
                dec ecx
                jnz top
            {EXIT}
            """,
            optimize=optimize,
        )

    def test_recursion_and_stack(self, optimize):
        run_both(
            f"""
            _start:
                mov eax, 7
                call fib
            {EXIT}
            fib:
                cmp eax, 2
                jl done
                push eax
                dec eax
                call fib
                pop ecx
                push eax
                mov eax, ecx
                sub eax, 2
                call fib
                pop ecx
                add eax, ecx
            done:
                ret
            """,
            optimize=optimize,
        )

    def test_memory_and_addressing(self, optimize):
        run_both(
            f"""
            _start:
                xor eax, eax
                xor ecx, ecx
            sum:
                add eax, [array + ecx*4]
                inc ecx
                cmp ecx, 8
                jne sum
                mov [result], eax
                mov eax, [result]
            {EXIT}
            .data
            array: dd 3, 1, 4, 1, 5, 9, 2, 6
            result: dd 0
            """,
            optimize=optimize,
        )

    def test_flags_across_instructions(self, optimize):
        run_both(
            f"""
            _start:
                mov eax, 0x7FFFFFFF
                add eax, 1           ; sets OF, SF
                seto ecx
                sets edx
                mov eax, 5
                sub eax, 9           ; sets CF, SF
                setb esi
                mov eax, 0
                add eax, ecx
                add eax, edx
                add eax, esi
            {EXIT}
            """,
            optimize=optimize,
        )

    def test_inc_dec_preserve_cf(self, optimize):
        run_both(
            f"""
            _start:
                mov eax, 0xFFFFFFFF
                add eax, 1           ; CF=1
                inc ecx              ; CF preserved
                setb eax             ; still 1
                dec ecx              ; CF preserved
                setb edx
                add eax, edx
            {EXIT}
            """,
            optimize=optimize,
        )

    def test_shifts_and_dynamic_counts(self, optimize):
        run_both(
            f"""
            _start:
                mov eax, 0x80000001
                mov ecx, 0
                shl eax, ecx         ; count 0: flags preserved
                mov ecx, 4
                shr eax, ecx
                setb edx             ; CF from shr
                mov ecx, 31
                mov esi, 0x80000000
                sar esi, ecx
                add eax, edx
                add eax, esi
            {EXIT}
            """,
            optimize=optimize,
        )

    def test_mul_div(self, optimize):
        run_both(
            f"""
            _start:
                mov eax, 123456
                mov ecx, 789
                mul ecx              ; EDX:EAX
                mov esi, edx
                mov eax, 97402589    ; fits: redo a division
                xor edx, edx
                mov ecx, 1000
                div ecx
                add eax, edx
                add eax, esi
            {EXIT}
            """,
            optimize=optimize,
        )

    def test_signed_division(self, optimize):
        run_both(
            f"""
            _start:
                mov eax, 0 - 1000
                cdq
                mov ecx, 37
                idiv ecx
                neg eax
                neg edx
                add eax, edx
            {EXIT}
            """,
            optimize=optimize,
        )

    def test_imul_overflow_flags(self, optimize):
        run_both(
            f"""
            _start:
                mov eax, 0x10000
                imul eax, eax        ; overflows
                seto ecx
                mov eax, 100
                imul eax, eax        ; doesn't
                seto edx
                mov eax, ecx
                shl eax, 4
                or eax, edx
            {EXIT}
            """,
            optimize=optimize,
        )

    def test_byte_operations(self, optimize):
        run_both(
            f"""
            _start:
                movb [buf], 0xFF
                addb [buf], 1         ; wraps to 0, sets ZF/CF at width 8
                setz eax
                setb ecx
                movzx edx, [buf]
                movb [buf + 1], 0x80
                movsx esi, [buf + 1]
                add eax, ecx
                add eax, edx
                and esi, 0xFF0
                add eax, esi
            {EXIT}
            .data
            buf: db 0, 0
            """,
            optimize=optimize,
        )

    def test_indirect_jumps_and_tables(self, optimize):
        run_both(
            f"""
            _start:
                xor edi, edi
                mov esi, 0
            loop:
                mov eax, esi
                and eax, 3
                jmp [table + eax*4]
            c0: add edi, 1
                jmp next
            c1: add edi, 10
                jmp next
            c2: add edi, 100
                jmp next
            c3: add edi, 1000
            next:
                inc esi
                cmp esi, 8
                jne loop
                mov eax, edi
            {EXIT}
            .data
            table: dd c0, c1, c2, c3
            """,
            optimize=optimize,
        )

    def test_calls_through_register(self, optimize):
        run_both(
            f"""
            _start:
                mov edx, helper
                call edx
                add eax, 1
            {EXIT}
            helper:
                mov eax, 41
                ret
            """,
            optimize=optimize,
        )

    def test_hello_world_io(self, optimize):
        vm, golden = run_both(
            """
            _start:
                mov eax, 4
                mov ebx, 1
                mov ecx, msg
                mov edx, 6
                int 0x80
                mov eax, 1
                mov ebx, 0
                int 0x80
            .data
            msg: db "hello\\n"
            """,
            optimize=optimize,
        )
        assert vm.syscalls.stdout_text == "hello\n"

    def test_setcc_all_conditions(self, optimize):
        # exercise every condition code via setcc after one compare
        sets = "\n".join(
            f"set{cc} edx\nadd eax, edx"
            for cc in ["o", "no", "b", "ae", "e", "ne", "be", "a", "s", "ns", "p", "np",
                       "l", "ge", "le", "g"]
        )
        run_both(
            f"""
            _start:
                xor eax, eax
                xor edx, edx
                mov ecx, 0 - 5
                cmp ecx, 3
                {sets}
            {EXIT}
            """,
            optimize=optimize,
        )

    def test_xchg_and_push_pop(self, optimize):
        run_both(
            f"""
            _start:
                mov eax, 3
                mov ecx, 9
                xchg eax, ecx
                push eax
                push ecx
                pop edx
                pop esi
                xchg edx, [spot]
                add eax, edx
                add eax, esi
                add eax, [spot]
            {EXIT}
            .data
            spot: dd 1000
            """,
            optimize=optimize,
        )

    def test_stack_args_ret_imm(self, optimize):
        run_both(
            f"""
            _start:
                push 30
                push 12
                call add2
            {EXIT}
            add2:
                mov eax, [esp + 4]
                add eax, [esp + 8]
                ret 8
            """,
            optimize=optimize,
        )

    def test_long_straight_line_block_split(self, optimize):
        body = "add eax, 3\nxor eax, 5\n" * 40
        run_both(f"_start:\nxor eax, eax\n{body}{EXIT}", optimize=optimize)


class TestChaining:
    def test_chains_are_patched_and_results_match(self):
        vm, _ = run_both(
            f"""
            _start:
                mov ecx, 100
                xor eax, eax
            top:
                add eax, ecx
                dec ecx
                jnz top
            {EXIT}
            """
        )
        assert vm.stats["chains_patched"] >= 2
        # the hot loop must not re-enter the dispatch loop per iteration
        assert vm.stats["blocks_executed"] < 20

    def test_divide_by_zero_faults_in_both(self):
        source = "_start: xor ecx, ecx\nxor edx, edx\nmov eax, 5\ndiv ecx\nhlt\n"
        program = assemble(source)
        with pytest.raises(GuestFault):
            GuestInterpreter.for_program(program).run()
        with pytest.raises(GuestFault):
            FunctionalVM(program).run()


class TestPropertyDifferential:
    """Randomized straight-line programs must agree on final state."""

    _OPS = ["add", "sub", "and", "or", "xor", "cmp", "test"]
    _REGS = ["eax", "ecx", "edx", "esi", "edi"]

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_random_alu_programs(self, data):
        length = data.draw(st.integers(min_value=1, max_value=12))
        lines = ["_start:"]
        for reg in self._REGS:
            lines.append(f"    mov {reg}, {data.draw(st.integers(0, 2**32 - 1))}")
        for _ in range(length):
            op = data.draw(st.sampled_from(self._OPS))
            dst = data.draw(st.sampled_from(self._REGS))
            if data.draw(st.booleans()):
                src = data.draw(st.sampled_from(self._REGS))
            else:
                src = str(data.draw(st.integers(-(2**31), 2**31 - 1)))
            lines.append(f"    {op} {dst}, {src}")
        lines.append(EXIT)
        run_both("\n".join(lines))

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_random_shift_programs(self, data):
        lines = ["_start:"]
        lines.append(f"    mov eax, {data.draw(st.integers(0, 2**32 - 1))}")
        lines.append(f"    mov edx, {data.draw(st.integers(0, 2**32 - 1))}")
        for _ in range(data.draw(st.integers(1, 6))):
            op = data.draw(st.sampled_from(["shl", "shr", "sar"]))
            reg = data.draw(st.sampled_from(["eax", "edx"]))
            count = data.draw(st.integers(0, 31))
            lines.append(f"    {op} {reg}, {count}")
            cc = data.draw(st.sampled_from(["b", "z", "s", "o"]))
            lines.append(f"    set{cc} esi")
            lines.append("    add edi, esi")
        lines.append("    mov eax, edi")
        lines.append(EXIT)
        run_both("\n".join(lines))

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_random_memory_programs(self, data):
        lines = ["_start:"]
        for _ in range(data.draw(st.integers(1, 8))):
            slot = data.draw(st.integers(0, 7))
            if data.draw(st.booleans()):
                value = data.draw(st.integers(-(2**31), 2**31 - 1))
                lines.append(f"    mov [buf + {slot * 4}], {value}")
            else:
                reg = data.draw(st.sampled_from(["eax", "ecx", "edx"]))
                lines.append(f"    mov {reg}, [buf + {slot * 4}]")
                lines.append(f"    add {reg}, 1")
                lines.append(f"    mov [buf + {slot * 4}], {reg}")
        lines.append("    mov eax, [buf]")
        lines.append(EXIT)
        lines.append(".data")
        lines.append("buf: dd 0, 0, 0, 0, 0, 0, 0, 0")
        run_both("\n".join(lines))

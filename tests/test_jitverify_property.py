"""Property: jitverify accepts every closure the compiler emits.

Hypothesis drives the JIT-eligibility-biased :mod:`tests.blockgen`
profile (divides, MUL, memory XCHG, every terminator shape) through a
shrinkable PRNG and asserts the verifier discharges each compiled
closure with zero refuted obligations and zero skips.  Counterexamples
are persisted (shrunk) under ``tests/data/`` exactly like the
equivalence property test.
"""

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests import blockgen
from repro.dbt.frontend import scan_block
from repro.guest.assembler import assemble
from repro.guest.memory import GuestMemory
from repro.verify.findings import VerificationError
from repro.verify.jitverify import JitVerifier

DATA_DIR = Path(__file__).parent / "data"
#: Written (and overwritten, ending with the shrunk minimum) whenever
#: the property below fails; rename to ``jit_regression_<what>.asm``
#: when committing one as a permanent regression.
COUNTEREXAMPLE = DATA_DIR / "jit_counterexample_latest.asm"


def _check_source(source):
    program = assemble(source)
    memory = GuestMemory()
    program.load(memory)
    guest = scan_block(memory.read_bytes, program.entry)
    verifier = JitVerifier(context="property")
    eligible = verifier.check_block(guest.instructions, program.entry)
    if eligible:
        assert verifier.stats.refuted == 0
        assert verifier.stats.skipped == 0, [
            str(finding) for finding in verifier.stats.findings
        ]
    return eligible


@settings(max_examples=25, deadline=None)
@given(st.randoms(use_true_random=False), st.integers(2, 14))
def test_jit_profile_closures_all_verify(rng, length):
    body = blockgen.random_jit_block_lines(rng, length)
    terminator = rng.choice(blockgen._JIT_TERMINATORS)
    if terminator == "jcc":
        source = blockgen.render_program(body, rng.choice(blockgen.JCC))
    else:
        source = blockgen.render_jit_program(body, terminator)
    try:
        _check_source(source)
    except (VerificationError, AssertionError):
        COUNTEREXAMPLE.write_text(source)
        raise


def _regressions():
    return sorted(DATA_DIR.glob("jit_regression_*.asm"))


@pytest.mark.parametrize(
    "path", _regressions() or [None], ids=lambda p: p.name if p else "none"
)
def test_persisted_counterexamples_stay_fixed(path):
    if path is None:
        pytest.skip("no persisted jitverify regressions")
    _check_source(path.read_text())

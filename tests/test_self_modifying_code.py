"""Self-modifying code detection and invalidation.

The paper (Section 5): "The current emulator was designed with self
modifying code in mind and is currently capable of detecting writes to
memory pages which contain code that has been translated."

Detection granularity is the dispatch boundary: a block that patches
code finishes executing before invalidation takes effect, and modified
code is re-translated on its next dispatch (reached through an
unchained edge — here, a RET).
"""


from repro.guest.assembler import assemble
from repro.guest.interpreter import GuestInterpreter
from repro.morph.config import PRESETS
from repro.vm.functional import FunctionalVM
from repro.vm.timing import run_timing

# `target` initially returns 11; the patcher rewrites its immediate to
# 77 between calls.  `mov eax, 11` assembles to the short imm8 form
# (opcode, ModRM, imm8), so the immediate byte sits at target+2.
SMC_PROGRAM = """
_start:
    call target          ; translate + execute the original code
    mov edi, eax         ; remember first result (11)
    movb [target + 2], 77 ; patch the imm8 in-place (byte write)
    call target          ; must observe the new code
    shl eax, 8
    or eax, edi          ; low byte = 11, next byte = 77
    shr eax, 4           ; exit code fits 8 bits: (77<<8 | 11) >> 4
    and eax, 255
    mov ebx, eax
    mov eax, 1
    int 0x80

target:
    mov eax, 11
    ret
"""


def _expected_exit() -> int:
    return ((77 << 8) | 11) >> 4 & 255


class TestInterpreterSmc:
    def test_interpreter_sees_patched_code(self):
        program = assemble(SMC_PROGRAM)
        interp = GuestInterpreter.for_program(program)
        assert interp.run() == _expected_exit()

    def test_decode_cache_invalidation_is_targeted(self):
        program = assemble(SMC_PROGRAM)
        interp = GuestInterpreter.for_program(program)
        interp.run()
        # a data-only program never purges (cheap-path check): no crash
        # and correct result is the observable


class TestFunctionalVmSmc:
    def test_translated_code_is_invalidated(self):
        program = assemble(SMC_PROGRAM)
        vm = FunctionalVM(program)
        exit_code = vm.run()
        assert exit_code == _expected_exit()
        assert vm.stats["smc_invalidations"] >= 1
        assert vm.stats["blocks_invalidated"] >= 1

    def test_matches_interpreter(self):
        program = assemble(SMC_PROGRAM)
        golden = GuestInterpreter.for_program(assemble(SMC_PROGRAM))
        vm = FunctionalVM(program)
        assert vm.run() == golden.run()

    def test_chains_into_invalidated_code_are_undone(self):
        # a loop that calls the patched function repeatedly: chains form
        # and must be unwound when the target is invalidated
        source = """
        _start:
            xor edi, edi
            mov esi, 0
        loop:
            call target
            add esi, eax
            cmp edi, 0
            jne second_phase
            movb [target + 2], 3  ; patch on first iteration
            inc edi
        second_phase:
            inc edi
            cmp edi, 6
            jl loop
            mov eax, esi
            and eax, 255
            mov ebx, eax
            mov eax, 1
            int 0x80
        target:
            mov eax, 1
            ret
        """
        program = assemble(source)
        golden = GuestInterpreter.for_program(assemble(source))
        vm = FunctionalVM(program)
        assert vm.run() == golden.run()
        assert vm.stats["smc_invalidations"] >= 1

    def test_non_code_writes_do_not_invalidate(self):
        source = """
        _start:
            mov [scratch], 123
            mov eax, [scratch]
            mov ebx, eax
            mov eax, 1
            int 0x80
        .data
        scratch: dd 0
        """
        vm = FunctionalVM(assemble(source))
        vm.run()
        assert vm.stats["smc_invalidations"] == 0


class TestTimingVmSmc:
    def test_timing_vm_handles_smc(self):
        program = assemble(SMC_PROGRAM)
        program.name = "smc"
        result = run_timing(program, PRESETS["default"])
        assert result.exit_code == _expected_exit()
        assert result.stats["vm.smc_invalidations"] >= 1

    def test_invalidation_costs_cycles(self):
        program = assemble(SMC_PROGRAM)
        program.name = "smc"
        result = run_timing(program, PRESETS["default"])
        clean = """
        _start:
            call target
            mov edi, eax
            call target
            mov ebx, 0
            mov eax, 1
            int 0x80
        target:
            mov eax, 11
            ret
        """
        clean_program = assemble(clean)
        clean_program.name = "clean"
        clean_result = run_timing(clean_program, PRESETS["default"])
        # the SMC run re-translates and pays the invalidation penalty
        assert result.cycles > clean_result.cycles

"""Tests for the experiment harness (at tiny scale for speed)."""

import pytest

from repro.harness import (
    FigureResult,
    figure1_timeline,
    figure4_l15_cache,
    figure8_optimization,
    table11_intrinsics,
)
from repro.harness.runner import RunGrid, clear_cache, run_one

SCALE = 0.15
SMALL = ["164.gzip", "181.mcf"]


@pytest.fixture(autouse=True, scope="module")
def _warm_cache():
    yield
    clear_cache()


class TestRunner:
    def test_run_one_is_memoized(self):
        first = run_one("164.gzip", "speculative_4", SCALE)
        second = run_one("164.gzip", "speculative_4", SCALE)
        assert first is second

    def test_unknown_config_rejected(self):
        with pytest.raises(KeyError):
            run_one("164.gzip", "no_such_config", SCALE)

    def test_grid_rows_and_columns(self):
        grid = RunGrid(SMALL, ["speculative_4", "speculative_6"], SCALE)
        assert len(grid.row("164.gzip")) == 2
        assert len(grid.column("speculative_4")) == 2
        assert grid.result("181.mcf", "speculative_6").workload == "181.mcf"


class TestFigureRunners:
    def test_figure1(self):
        result = figure1_timeline(workload="164.gzip", scale=SCALE)
        assert isinstance(result, FigureResult)
        assert len(result.rows) == 2
        assert "deltaT" in result.notes[0]

    def test_figure4_rows_match_workloads(self):
        result = figure4_l15_cache(workloads=SMALL, scale=SCALE)
        assert [row[0] for row in result.rows] == SMALL
        assert len(result.columns) == 4  # benchmark + 3 configs

    def test_figure8_ratio_column(self):
        result = figure8_optimization(workloads=["164.gzip"], scale=SCALE)
        ratio = float(result.rows[0][3])
        assert ratio > 1.0  # optimization always wins

    def test_table11_is_static(self):
        result = table11_intrinsics(measured_low_end=7.2)
        rendered = result.render()
        assert "lat 87, occ 87" in rendered
        assert "5.5x" in rendered

    def test_render_aligns_columns(self):
        result = figure4_l15_cache(workloads=SMALL, scale=SCALE)
        lines = result.render().splitlines()
        # header + one line per workload + notes
        assert len(lines) >= 1 + len(SMALL)
        assert lines[0].startswith("== Figure 4")

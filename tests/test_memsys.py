"""Tests for the pipelined memory system, page table and TLB."""

import pytest

from repro.memsys.memsystem import (
    BANK_OCCUPANCY,
    DRAM_LATENCY,
    L1_HIT_LATENCY,
    PipelinedMemorySystem,
)
from repro.memsys.pagetable import PAGE_SIZE, PageFault, PageTable
from repro.memsys.tlb import Tlb
from repro.tiled.machine import default_placement


def make_memsys(banks: int = 4) -> PipelinedMemorySystem:
    grid = default_placement(translator_tiles=6, l2_bank_tiles=banks)
    memsys = PipelinedMemorySystem(grid)
    memsys.page_table.map_region(0, 1 << 24)
    return memsys


class TestPageTable:
    def test_identity_walk(self):
        table = PageTable()
        table.map_region(0x8048000, 0x2000)
        address, touches = table.walk(0x8048123)
        assert address == 0x8048123
        assert touches == 2

    def test_unmapped_faults(self):
        with pytest.raises(PageFault):
            PageTable().walk(0x1000)

    def test_non_identity_mapping(self):
        table = PageTable()
        table.map_page(guest_page=5, host_frame=100)
        address, _ = table.walk(5 * PAGE_SIZE + 7)
        assert address == 100 * PAGE_SIZE + 7

    def test_mapped_pages_counted_once(self):
        table = PageTable()
        table.map_page(1)
        table.map_page(1)
        assert table.mapped_pages == 1


class TestTlb:
    def test_hit_after_miss(self):
        table = PageTable()
        table.map_region(0, 0x10000)
        tlb = Tlb(table, entries=4)
        _, touches = tlb.translate(0x1234)
        assert touches == 2
        _, touches = tlb.translate(0x1238)
        assert touches == 0  # same page: hit
        assert tlb.miss_rate == 0.5

    def test_capacity_eviction(self):
        table = PageTable()
        table.map_region(0, 0x100000)
        tlb = Tlb(table, entries=2)
        for page in range(3):
            tlb.translate(page * PAGE_SIZE)
        _, touches = tlb.translate(0)  # evicted by pages 1, 2
        assert touches == 2

    def test_flush(self):
        table = PageTable()
        table.map_region(0, 0x10000)
        tlb = Tlb(table)
        tlb.translate(0)
        tlb.flush()
        _, touches = tlb.translate(0)
        assert touches == 2


class TestPipelinedMemorySystem:
    def test_l1_hit_has_no_extra_stall(self):
        memsys = make_memsys()
        memsys.access(0, 0x1000, False)  # warm
        outcome = memsys.access(100, 0x1000, False)
        assert outcome.l1_hit
        assert outcome.stall_cycles == 0

    def test_l1_miss_costs_about_table11_l2_hit(self):
        memsys = make_memsys()
        # warm the bank + TLB so the second access to a *different* L1
        # line in the same bank line region is a pure L1-miss/bank-hit
        memsys.access(0, 0x2000, False)
        memsys.l1.flush()
        outcome = memsys.access(10_000, 0x2000, False)
        assert not outcome.l1_hit
        assert outcome.bank_hit
        # end-to-end latency = stall + L1 hit latency; Table 11 says 87
        total = outcome.stall_cycles + L1_HIT_LATENCY
        assert 75 <= total <= 100

    def test_bank_miss_adds_dram_latency(self):
        memsys = make_memsys()
        memsys.access(0, 0x3000, False)  # TLB warm
        memsys.l1.flush()
        for bank in memsys.banks:
            bank.cache.flush()
        outcome = memsys.access(10_000, 0x3000, False)
        assert not outcome.bank_hit
        total = outcome.stall_cycles + L1_HIT_LATENCY
        assert 135 <= total <= 170  # Table 11: ~151

    def test_soft_page_fault_maps_page(self):
        memsys = make_memsys()
        outcome = memsys.access(0, 0x5000000, False)  # beyond mapped region
        assert memsys.stats["soft_page_faults"] == 1
        assert memsys.page_table.is_mapped(0x5000000)

    def test_bank_contention_queues(self):
        memsys = make_memsys(banks=1)
        memsys.page_table.map_region(0, 1 << 20)
        # two misses to the same bank back to back: the second waits
        a = memsys.access(0, 0x10000, False)
        b = memsys.access(0, 0x20040, False)
        assert b.stall_cycles > a.stall_cycles - DRAM_LATENCY  # queued behind a

    def test_no_banks_goes_straight_to_dram(self):
        memsys = make_memsys(banks=0)
        outcome = memsys.access(0, 0x1000, False)
        assert not outcome.l1_hit or outcome.stall_cycles == 0
        memsys.l1.flush()
        outcome = memsys.access(1000, 0x1000, False)
        assert outcome.stall_cycles >= BANK_OCCUPANCY

    def test_reconfigure_flushes_and_charges(self):
        memsys = make_memsys(banks=4)
        memsys.access(0, 0x1000, True)  # dirty line in some bank
        memsys.l1.flush()
        coords = [b.coord for b in memsys.banks][:1]
        cost = memsys.reconfigure_banks(coords, now=1000)
        assert cost > 0
        assert memsys.bank_count == 1

    def test_write_allocates_dirty(self):
        memsys = make_memsys()
        memsys.access(0, 0x4000, True)
        assert memsys.l1.stats["misses"] == 1
        outcome = memsys.access(10, 0x4000, False)
        assert outcome.l1_hit

"""Unit tests for guest memory, program images and syscalls."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.guest.memory import GuestMemory, MemoryFault, PAGE_SIZE
from repro.guest.program import GuestProgram, Section, STACK_TOP, TEXT_BASE
from repro.guest.syscalls import SYS_BRK, SYS_EXIT, SYS_READ, SYS_WRITE, SyscallProxy


class TestGuestMemory:
    def test_unmapped_access_faults(self):
        memory = GuestMemory()
        with pytest.raises(MemoryFault):
            memory.read_u8(0x1000)
        with pytest.raises(MemoryFault):
            memory.write_u32(0x1000, 1)

    def test_map_and_rw(self):
        memory = GuestMemory()
        memory.map_region(0x1000, 0x100)
        memory.write_u32(0x1000, 0xDEADBEEF)
        assert memory.read_u32(0x1000) == 0xDEADBEEF
        assert memory.read_u8(0x1000) == 0xEF  # little-endian

    def test_cross_page_u32(self):
        memory = GuestMemory()
        memory.map_region(PAGE_SIZE - 8, 16)
        address = PAGE_SIZE - 2
        memory.write_u32(address, 0x11223344)
        assert memory.read_u32(address) == 0x11223344

    def test_bulk_rw_spanning_pages(self):
        memory = GuestMemory()
        memory.map_region(0, 3 * PAGE_SIZE)
        data = bytes(range(256)) * 8
        memory.write_bytes(PAGE_SIZE - 100, data)
        assert memory.read_bytes(PAGE_SIZE - 100, len(data)) == data

    def test_load_image(self):
        memory = GuestMemory()
        memory.load_image(0x8000, b"hello")
        assert memory.read_bytes(0x8000, 5) == b"hello"

    @given(
        address=st.integers(min_value=0, max_value=2**20),
        value=st.integers(min_value=0, max_value=0xFFFFFFFF),
    )
    def test_u32_roundtrip(self, address, value):
        memory = GuestMemory()
        memory.map_region(address, 8)
        memory.write_u32(address, value)
        assert memory.read_u32(address) == value


class TestGuestProgram:
    def _program(self) -> GuestProgram:
        return GuestProgram(
            entry=TEXT_BASE,
            sections=[
                Section(".text", TEXT_BASE, b"\x90" * 64),
                Section(".data", 0x08400000, b"\x01\x02"),
            ],
        )

    def test_text_property(self):
        assert self._program().text.address == TEXT_BASE

    def test_code_size(self):
        assert self._program().code_size == 64

    def test_brk_base_past_sections(self):
        program = self._program()
        assert program.brk_base >= 0x08400002
        assert program.brk_base % 0x1000 == 0

    def test_load_maps_stack(self):
        memory = GuestMemory()
        esp = self._program().load(memory)
        assert esp < STACK_TOP
        memory.write_u32(esp - 4, 42)  # stack usable
        assert memory.read_u32(esp - 4) == 42

    def test_section_holding(self):
        program = self._program()
        assert program.section_holding(TEXT_BASE + 10).name == ".text"
        assert program.section_holding(0x12345) is None

    def test_missing_text_raises(self):
        with pytest.raises(ValueError):
            GuestProgram(entry=0, sections=[]).text


class TestSyscallProxy:
    def test_exit(self):
        proxy = SyscallProxy()
        result = proxy.dispatch(SYS_EXIT, [7, 0, 0], GuestMemory())
        assert result.exited
        assert result.exit_code == 7

    def test_write_stdout(self):
        proxy = SyscallProxy()
        memory = GuestMemory()
        memory.load_image(0x1000, b"hi there")
        result = proxy.dispatch(SYS_WRITE, [1, 0x1000, 8], memory)
        assert result.return_value == 8
        assert proxy.stdout_text == "hi there"

    def test_write_bad_fd(self):
        proxy = SyscallProxy()
        result = proxy.dispatch(SYS_WRITE, [9, 0, 0], GuestMemory())
        assert result.return_value > 0x80000000  # negative errno

    def test_read_stdin(self):
        proxy = SyscallProxy(stdin=b"abcdef")
        memory = GuestMemory()
        memory.map_region(0x1000, 0x100)
        result = proxy.dispatch(SYS_READ, [0, 0x1000, 4], memory)
        assert result.return_value == 4
        assert memory.read_bytes(0x1000, 4) == b"abcd"
        result = proxy.dispatch(SYS_READ, [0, 0x1000, 10], memory)
        assert result.return_value == 2  # rest of stdin

    def test_brk_query_and_grow(self):
        proxy = SyscallProxy(brk_base=0x10000)
        memory = GuestMemory()
        result = proxy.dispatch(SYS_BRK, [0, 0, 0], memory)
        assert result.return_value == 0x10000
        result = proxy.dispatch(SYS_BRK, [0x12000, 0, 0], memory)
        assert result.return_value == 0x12000
        memory.write_u32(0x11000, 5)  # grown region is mapped
        assert memory.read_u32(0x11000) == 5

    def test_unknown_syscall_returns_enosys(self):
        proxy = SyscallProxy()
        result = proxy.dispatch(999, [0, 0, 0], GuestMemory())
        assert result.return_value == (-38) & 0xFFFFFFFF

"""Differential fuzz bridge: symexec input vectors drive the fast path.

The equivalence checker's seeded random vectors (``make_vector``) are
reused here to seed full architectural states, which are then executed
two ways — instruction-by-instruction ``step()`` and the pre-resolved
block fast path ``run_block_at()`` — over random straight-line blocks.
Registers, flags, EIP and the data buffer must match exactly, tying
the symbolic validation layer and the PR 3 interpreter fast path to
the same input distribution.
"""

import pytest

from tests import blockgen
from repro.guest.assembler import assemble
from repro.guest.interpreter import GuestInterpreter
from repro.guest.isa import ALL_FLAGS, Op, Register
from repro.verify.symexec.concrete import make_vector

_VECTORS = 4
_FLAG_NAMES = tuple(flag.name.lower() for flag in ALL_FLAGS)


def _seeded_interpreter(program, env):
    interp = GuestInterpreter.for_program(program)
    for reg in Register:
        if reg is not Register.ESP:  # keep the loader's mapped stack
            interp.state.regs[reg] = env[reg.name.lower()]
    interp.state.flags = 0
    for flag in ALL_FLAGS:
        interp.state.flags |= env[flag.name.lower()] << int(flag)
    return interp


def _body_steps(program):
    """Instructions to execute: the block body, minus the final syscall."""
    from repro.dbt.frontend import scan_block
    from repro.guest.memory import GuestMemory

    memory = GuestMemory()
    program.load(memory)
    guest = scan_block(lambda addr, n: memory.read_bytes(addr, n), program.entry)
    steps = len(guest.instructions)
    if guest.instructions[-1].op in (Op.INT, Op.HLT):
        steps -= 1
    return steps


@pytest.mark.parametrize("seed", range(10))
def test_step_and_fastpath_agree_on_symexec_vectors(seed):
    source = blockgen.random_program(seed + 500, length=10)
    program = assemble(source)
    steps = _body_steps(program)
    if steps == 0:
        pytest.skip("degenerate block")
    buf = program.symbols["buf"]

    names = [reg.name.lower() for reg in Register] + list(_FLAG_NAMES)
    ones = {name: 1 for name in _FLAG_NAMES}
    for k in range(_VECTORS):
        env = make_vector(seed * 77 + k, names, ones)
        stepping = _seeded_interpreter(program, env)
        blockwise = _seeded_interpreter(program, env)

        for _ in range(steps):
            stepping.step()
        executed = blockwise.run_block_at(program.entry, steps)

        assert executed == steps
        assert stepping.state.snapshot() == blockwise.state.snapshot(), (
            f"seed {seed} vector {k} diverged\n{source}"
        )
        assert (
            stepping.memory.read_bytes(buf, blockgen.BUF_BYTES)
            == blockwise.memory.read_bytes(buf, blockgen.BUF_BYTES)
        ), f"seed {seed} vector {k}: data buffer diverged\n{source}"


SELF_PATCHING_LOOP = """
_start:
    mov ecx, 40
loop:
    mov eax, 5
    add ebx, eax
    sub ecx, 1
    cmp ecx, 20
    jne skip
    movb [loop + 2], 9   ; halfway through, grow the per-iteration add
skip:
    test ecx, ecx
    jnz loop
    mov eax, 1
    and ebx, 255
    int 0x80
"""

#: 20 iterations add 5, the patch lands, 20 iterations add 9.
_SELF_PATCHING_EXIT = (20 * 5 + 20 * 9) & 255


class TestVmSelfModifyingCode:
    """The VM dispatch loop must de-chain and recompile on code writes.

    A workload hot enough to compile and chain overwrites its own loop
    body mid-run; with the JIT on, the patched bytes must take effect
    exactly as they do instruction-by-instruction, and the timing
    results must stay bit-identical to the interpreter's.
    """

    def test_jit_dechains_and_matches_interpreter(self):
        import dataclasses

        from repro.morph.config import PRESETS
        from repro.vm.timing import TimingVM, run_timing

        program = assemble(SELF_PATCHING_LOOP)
        config = PRESETS["speculative_4"]
        off = run_timing(program, config, jit=False)
        assert off.exit_code == _SELF_PATCHING_EXIT

        vm = TimingVM(program, config, jit=True)
        on = vm.run()
        assert dataclasses.asdict(on) == dataclasses.asdict(off)
        # the JIT really engaged: the loop compiled, chained, was
        # invalidated by the patch, and recompiled against the new bytes
        assert vm.jit_metrics["compiles"] >= 2
        assert vm.jit_metrics["invalidations"] >= 1
        assert vm.jit_metrics["chains_linked"] >= 1

    def test_interpreter_smc_program_matches_with_jit(self):
        import dataclasses

        from repro.morph.config import PRESETS
        from repro.vm.timing import run_timing

        from tests.test_self_modifying_code import SMC_PROGRAM

        program = assemble(SMC_PROGRAM)
        config = PRESETS["speculative_4"]
        off = run_timing(program, config, jit=False)
        on = run_timing(program, config, jit=True)
        assert dataclasses.asdict(on) == dataclasses.asdict(off)

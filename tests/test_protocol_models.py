"""Explicit-state model checking of the runtime protocols.

Two halves:

* the clean models (SMC invalidation, superblock chaining, the morph
  FSM, the concurrent disk cache) explore to their small-scope bounds
  with zero violations — the protocols as implemented are safe;
* every planted-bug variant is caught with a shortest counterexample
  naming the expected invariant — the models are strong enough to see
  the bugs they were built to exclude.
"""

import json

import pytest

from repro.verify.protocol import (
    MODELS,
    PLANTED_BUGS,
    Model,
    check_model,
)
from repro.verify.protocol.mc import Violation


class _TinyCounter(Model):
    """0..3 counter; 'bad' jumps straight to the violating value."""

    name = "tiny"
    invariants = ("under-three",)

    def __init__(self, with_bug: bool = False):
        self.with_bug = with_bug

    def initial_states(self):
        return [0]

    def actions(self, state):
        out = []
        if state < 2:
            out.append(("inc", state + 1))
        if self.with_bug:
            out.append(("bad", 3))
        return out

    def violations(self, state):
        return ["under-three"] if state >= 3 else []

    def is_quiescent(self, state):
        return True


class _Deadlocker(Model):
    """One step into a state with no actions and no quiescence."""

    name = "deadlocker"
    invariants = ()
    deadlock_invariant = "stuck"

    def initial_states(self):
        return ["start"]

    def actions(self, state):
        return [("go", "stuck")] if state == "start" else []

    def violations(self, state):
        return []

    def is_quiescent(self, state):
        return state == "start"


class TestChecker:
    def test_clean_counter(self):
        result = check_model(_TinyCounter())
        assert result.ok
        assert result.states == 3
        assert result.violations == []

    def test_counterexample_is_shortest(self):
        result = check_model(_TinyCounter(with_bug=True))
        assert not result.ok
        (violation,) = result.violations
        assert violation.invariant == "under-three"
        # BFS: the one-step "bad" edge, not inc,inc,bad
        assert list(violation.trace) == ["bad"]

    def test_deadlock_detection(self):
        result = check_model(_Deadlocker())
        assert not result.ok
        (violation,) = result.violations
        assert violation.invariant == "stuck"
        assert list(violation.trace) == ["go"]

    def test_truncation_flagged(self):
        result = check_model(MODELS["chain"](), max_states=10)
        assert result.truncated
        assert not result.ok

    def test_result_serializes(self):
        result = check_model(_TinyCounter(with_bug=True))
        doc = json.loads(json.dumps(result.as_dict()))
        assert doc["model"] == "tiny"
        assert doc["violations"][0]["invariant"] == "under-three"
        assert str(result)  # summary line renders

    def test_violation_renders(self):
        violation = Violation(invariant="inv", state="s", trace=("a", "b"))
        assert "inv" in str(violation)
        assert "a -> b" in str(violation)


class TestCleanModels:
    @pytest.mark.parametrize("name", sorted(MODELS))
    def test_model_is_safe(self, name):
        result = check_model(MODELS[name]())
        assert result.ok, f"{name}:\n" + "\n".join(str(v) for v in result.violations)
        assert not result.truncated
        assert result.states > 1
        assert result.invariant_checks == result.states * len(result.invariants)

    def test_expected_state_space_sizes(self):
        # pin the small-scope bounds: a silent collapse of a model's
        # state space (a bug in its actions) would pass test_model_is_safe
        sizes = {name: check_model(MODELS[name]()).states for name in MODELS}
        assert sizes["smc"] > 500
        assert sizes["chain"] > 1000
        assert sizes["morph"] > 300
        assert sizes["diskcache"] >= 10


class TestPlantedBugs:
    @pytest.mark.parametrize("variant", sorted(PLANTED_BUGS))
    def test_bug_is_caught(self, variant):
        model_name, kwargs, expected = PLANTED_BUGS[variant]
        result = check_model(MODELS[model_name](**kwargs))
        matching = [v for v in result.violations if v.invariant == expected]
        assert matching, (
            f"{variant}: expected a {expected} counterexample, got "
            f"{[v.invariant for v in result.violations]}"
        )
        # a counterexample is a real trace, not the initial state
        assert len(matching[0].trace) >= 1

    def test_every_model_has_a_planted_bug(self):
        covered = {model_name for model_name, _, _ in PLANTED_BUGS.values()}
        assert covered == set(MODELS)

    def test_every_invariant_name_is_declared(self):
        for variant, (model_name, _, expected) in PLANTED_BUGS.items():
            model = MODELS[model_name]()
            declared = set(model.invariants) | {model.deadlock_invariant}
            assert expected in declared, variant


class TestModelCli:
    def test_model_command_clean(self, capsys):
        from repro.verify.cli import main

        assert main(["model", "diskcache"]) == 0
        out = capsys.readouterr().out
        assert "diskcache" in out
        assert "[ok]" in out

    def test_model_command_planted_and_json(self, tmp_path, capsys):
        from repro.verify.cli import main

        path = tmp_path / "models.json"
        assert main(["model", "--planted", "--json", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert {row["model"] for row in doc["models"]} == set(MODELS)
        assert all(row["caught"] for row in doc["planted"])
        assert len(doc["planted"]) == len(PLANTED_BUGS)

    def test_model_command_rejects_unknown(self):
        from repro.verify.cli import main

        with pytest.raises(SystemExit):
            main(["model", "nonesuch"])

"""Benchmark history: the JSONL store, grouping, the trend-aware
regression gate (including a planted regression through the CLI), and
table rendering."""

import json

from repro.obs import cli
from repro.obs.history import (
    DEFAULT_TOLERANCE,
    MIN_BASELINE_SAMPLES,
    SCHEMA_VERSION,
    BenchHistory,
    check_regressions,
    group_key,
    make_record,
    trend_table,
    watched_metrics,
)


def _record(ts, *, source="perf_smoke:164.gzip", jit_speedup=6.5,
            total_seconds=None, **extra_metrics):
    metrics = {"jit_speedup": jit_speedup}
    metrics.update(extra_metrics)
    return make_record(
        source,
        scale=0.3, jobs=1, jit=True,
        total_seconds=total_seconds,
        metrics=metrics,
        stamp="deadbeef",
        ts=ts,
    )


class TestStore:
    def test_append_and_read_roundtrip(self, tmp_path):
        store = BenchHistory(tmp_path)
        record = _record(1000.0, total_seconds=12.5)
        path = store.append(record)
        assert path == tmp_path / "history.jsonl"
        loaded = store.records()
        assert loaded == [record]
        assert store.skipped == 0

    def test_records_in_append_order(self, tmp_path):
        store = BenchHistory(tmp_path)
        for ts in (1.0, 2.0, 3.0):
            store.append(_record(ts))
        assert [r["ts"] for r in store.records()] == [1.0, 2.0, 3.0]

    def test_torn_tail_and_garbage_skipped(self, tmp_path):
        store = BenchHistory(tmp_path)
        store.append(_record(1.0))
        with open(store.path, "a") as handle:
            handle.write("{\"schema\": 1, \"truncat")  # a killed run's tail
        store.append(_record(2.0))  # wait — append lands after the torn line
        records = store.records()
        # the torn fragment glues onto the next line, corrupting both;
        # the first record must survive regardless
        assert records[0]["ts"] == 1.0
        assert store.skipped >= 1

    def test_newer_schema_records_skipped(self, tmp_path):
        store = BenchHistory(tmp_path)
        store.append(_record(1.0))
        future = dict(_record(2.0), schema=SCHEMA_VERSION + 1)
        store.append(future)
        records = store.records()
        assert [r["ts"] for r in records] == [1.0]
        assert store.skipped == 1

    def test_missing_file_is_empty_history(self, tmp_path):
        store = BenchHistory(tmp_path / "never_created")
        assert store.records() == []

    def test_embedded_newlines_stay_on_one_line(self, tmp_path):
        # json escapes them, so the line protocol survives hostile strings
        store = BenchHistory(tmp_path)
        store.append({"schema": 1, "note": "a\nb"})
        records = store.records()
        assert records == [{"schema": 1, "note": "a\nb"}]
        assert store.skipped == 0

    def test_root_env_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCHHISTORY_DIR", str(tmp_path / "env_root"))
        store = BenchHistory()
        assert store.root == tmp_path / "env_root"


class TestRecordShape:
    def test_make_record_fields(self):
        record = _record(1234.5678, total_seconds=3.14159)
        assert record["schema"] == SCHEMA_VERSION
        assert record["ts"] == 1234.568
        assert record["iso"].endswith("Z")
        assert record["stamp"] == "deadbeef"
        assert record["knobs"] == {"scale": 0.3, "jobs": 1, "jit": True}
        assert record["total_seconds"] == 3.142
        json.dumps(record)  # must be one-line serializable

    def test_figures_and_phases_normalised(self):
        record = make_record(
            "run_all", scale=1.0, jobs=2, jit=True,
            figures={"Figure 5": {"cold_seconds": 10.12345, "warm_seconds": 2.0}},
            phases={"jit.compile": {"ns": 123456789.0, "calls": 42.0}},
            stamp="s", ts=0.0,
        )
        assert record["figures"]["Figure 5"]["cold_seconds"] == 10.123
        assert record["phases"]["jit.compile"] == {"ns": 123456789, "calls": 42}

    def test_group_key_separates_knobs(self):
        a = _record(1.0)
        b = make_record("perf_smoke:164.gzip", scale=0.3, jobs=4, jit=True,
                        stamp="s", ts=2.0)
        assert group_key(a) != group_key(b)
        assert group_key(a) == group_key(_record(3.0))

    def test_watched_metrics_direction(self):
        record = make_record(
            "run_all", scale=1.0, jobs=2, jit=True,
            total_seconds=30.0,
            figures={"Figure 5": {"cold_seconds": 10.0}},
            metrics={
                "jit_blocks_per_second": 50_000.0,
                "jit_speedup": 6.5,
                "slowdown_low_band": 1.2,
            },
            stamp="s", ts=0.0,
        )
        watched = watched_metrics(record)
        # throughput-shaped: higher is better
        assert watched["jit_blocks_per_second"] == (50_000.0, True)
        assert watched["jit_speedup"] == (6.5, True)
        # time-shaped: higher is worse
        assert watched["total_seconds"] == (30.0, False)
        assert watched["Figure 5 cold_seconds"] == (10.0, False)
        assert watched["slowdown_low_band"] == (1.2, False)


def _steady_history(n=5, speedup=6.5):
    return [_record(float(i), jit_speedup=speedup) for i in range(n)]


class TestGate:
    def test_steady_history_passes(self):
        assert check_regressions(_steady_history()) == []

    def test_abstains_below_min_samples(self):
        records = _steady_history(MIN_BASELINE_SAMPLES - 1)  # priors < min
        records.append(_record(99.0, jit_speedup=0.1))  # huge planted regression
        assert check_regressions(records) == []

    def test_planted_throughput_regression_flagged(self):
        records = _steady_history(5)
        records.append(_record(99.0, jit_speedup=6.5 * (1 - DEFAULT_TOLERANCE) * 0.9))
        problems = check_regressions(records)
        assert len(problems) == 1
        assert "jit_speedup" in problems[0]

    def test_planted_time_regression_flagged(self):
        records = [_record(float(i), total_seconds=10.0) for i in range(5)]
        records.append(_record(99.0, total_seconds=10.0 * (1 + DEFAULT_TOLERANCE) * 1.1))
        problems = check_regressions(records)
        assert any("total_seconds" in p for p in problems)

    def test_within_tolerance_passes(self):
        records = _steady_history(5)
        records.append(_record(99.0, jit_speedup=6.5 * (1 - DEFAULT_TOLERANCE) * 1.05))
        assert check_regressions(records) == []

    def test_improvement_never_flagged(self):
        records = _steady_history(5)
        records.append(_record(99.0, jit_speedup=60.0))
        assert check_regressions(records) == []

    def test_other_groups_do_not_pollute_baseline(self):
        # a much faster run_all group must not make the smoke gate trip
        records = [
            make_record("run_all", scale=1.0, jobs=2, jit=True,
                        metrics={"jit_speedup": 100.0}, stamp="s", ts=float(i))
            for i in range(5)
        ]
        records += _steady_history(5)
        records.append(_record(99.0, jit_speedup=6.4))
        assert check_regressions(records) == []

    def test_rolling_window_limits_baseline(self):
        # ancient fast runs age out of the window: only the recent slow
        # ones form the median, so a "regression" vs ancient history passes
        records = [_record(float(i), jit_speedup=20.0) for i in range(5)]
        records += [_record(float(10 + i), jit_speedup=5.0) for i in range(5)]
        records.append(_record(99.0, jit_speedup=4.5))
        assert check_regressions(records, window=5) == []
        # with a window spanning the fast era it trips
        assert check_regressions(records, window=10) != []


class TestTrendCLI:
    def _seed(self, tmp_path, tail_speedup):
        store = BenchHistory(tmp_path)
        for record in _steady_history(5):
            store.append(record)
        store.append(_record(99.0, jit_speedup=tail_speedup))

    def test_trend_table_renders(self):
        text = trend_table(_steady_history(3))
        assert "perf_smoke:164.gzip" in text
        assert "jit_speedup" in text
        assert "6.500" in text

    def test_trend_table_empty_history(self):
        assert "history is empty" in trend_table([])

    def test_cli_check_passes_on_steady_history(self, tmp_path, capsys):
        self._seed(tmp_path, tail_speedup=6.5)
        rc = cli.main(["trend", "--dir", str(tmp_path), "--check"])
        assert rc == 0
        assert "trend gate: OK" in capsys.readouterr().out

    def test_cli_check_fails_on_planted_regression(self, tmp_path, capsys):
        self._seed(tmp_path, tail_speedup=1.0)
        rc = cli.main(["trend", "--dir", str(tmp_path), "--check"])
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_cli_trend_without_check_never_gates(self, tmp_path):
        self._seed(tmp_path, tail_speedup=1.0)
        assert cli.main(["trend", "--dir", str(tmp_path)]) == 0

    def test_cli_reports_skipped_lines(self, tmp_path, capsys):
        self._seed(tmp_path, tail_speedup=6.5)
        with open(tmp_path / "history.jsonl", "a") as handle:
            handle.write("not json\n")
        rc = cli.main(["trend", "--dir", str(tmp_path), "--check"])
        assert rc == 0
        assert "skipped 1 unreadable" in capsys.readouterr().err

    def test_cli_tolerance_flag(self, tmp_path):
        # a 10% dip: fails at 5% tolerance, passes at 25%
        self._seed(tmp_path, tail_speedup=6.5 * 0.9)
        assert cli.main(["trend", "--dir", str(tmp_path), "--check",
                         "--tolerance", "0.05"]) == 1
        assert cli.main(["trend", "--dir", str(tmp_path), "--check",
                         "--tolerance", "0.25"]) == 0

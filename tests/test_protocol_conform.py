"""Trace conformance: synthetic streams, live runs, checked mode.

The synthetic half feeds hand-built event streams (raw dicts, the same
shape ``python -m repro.obs trace --raw`` exports) through
:func:`conform_events` and checks that each protocol rule fires on
exactly the stream that breaks it.  The live half runs real workloads
— including a self-modifying one — and requires zero violations, plus
the ``TimingVM(checked="protocol")`` wiring end to end.
"""

import json

import pytest

from repro.guest.assembler import assemble
from repro.morph.config import PRESETS
from repro.obs.events import Tracer
from repro.verify.findings import Severity, VerificationError
from repro.verify.protocol import conform_events, conform_vm
from repro.vm.timing import TimingVM

from tests.test_self_modifying_code import SMC_PROGRAM


def _codes(report):
    return [f.code for f in report.findings if f.severity is Severity.ERROR]


def _ev(cycle, category, name, tile="execution", **args):
    doc = {"cycle": cycle, "category": category, "name": name, "tile": tile}
    if args:
        doc["args"] = args
    return doc


class TestSpecq:
    def test_balanced_queue(self):
        report = conform_events([
            _ev(10, "specq", "enqueue", qlen=1),
            _ev(20, "specq", "enqueue", qlen=2),
            _ev(30, "specq", "dequeue", "slave0", qlen=1),
            _ev(40, "specq", "dequeue", "slave1", qlen=0),
        ])
        assert report.ok
        assert report.counts == {"specq": 4}

    def test_qlen_mismatch(self):
        report = conform_events([
            _ev(10, "specq", "enqueue", qlen=1),
            _ev(20, "specq", "dequeue", qlen=5),
        ])
        assert _codes(report) == ["specq-qlen-mismatch"]

    def test_windowed_adopts_first_observation(self):
        # dropped > 0: the stream starts mid-run at qlen 7
        report = conform_events([
            _ev(10, "specq", "dequeue", qlen=7),
            _ev(20, "specq", "dequeue", qlen=6),
        ], dropped=3)
        assert report.ok
        assert report.dropped == 3

    def test_bad_qlen_type(self):
        report = conform_events([_ev(10, "specq", "enqueue", qlen="many")])
        assert _codes(report) == ["specq-bad-qlen"]


class TestTranslate:
    def test_paired_per_tile(self):
        report = conform_events([
            _ev(10, "translate", "start", "slave0", pc=0x1000),
            _ev(11, "translate", "start", "slave1", pc=0x2000),
            _ev(50, "translate", "end", "slave0", pc=0x1000),
            _ev(60, "translate", "end", "slave1", pc=0x2000),
        ])
        assert report.ok

    def test_overlapping_start(self):
        report = conform_events([
            _ev(10, "translate", "start", "slave0", pc=0x1000),
            _ev(20, "translate", "start", "slave0", pc=0x2000),
        ])
        assert "translate-overlapping-start" in _codes(report)

    def test_unpaired_end_strict(self):
        report = conform_events([_ev(10, "translate", "end", "slave0", pc=0x1000)])
        assert _codes(report) == ["translate-unpaired-end"]

    def test_leading_end_forgiven_when_windowed(self):
        report = conform_events(
            [_ev(10, "translate", "end", "slave0", pc=0x1000)], dropped=100
        )
        assert report.ok

    def test_pc_mismatch_and_negative_duration(self):
        report = conform_events([
            _ev(50, "translate", "start", "slave0", pc=0x1000),
            _ev(10, "translate", "end", "slave0", pc=0x3000),
        ])
        assert set(_codes(report)) == {
            "translate-pc-mismatch", "translate-negative-duration",
        }


class TestJit:
    def test_consecutive_enters_are_legal(self):
        # a trace aborted at length 0 emits no exit event
        report = conform_events([
            _ev(10, "jit", "trace_enter", pc=0x1000),
            _ev(20, "jit", "trace_enter", pc=0x2000),
            _ev(30, "jit", "trace_exit", blocks=4, reason="cold"),
        ])
        assert report.ok

    def test_empty_trace_and_bad_reason(self):
        report = conform_events([
            _ev(10, "jit", "trace_enter", pc=0x1000),
            _ev(20, "jit", "trace_exit", blocks=0, reason="tired"),
        ])
        assert set(_codes(report)) == {"jit-empty-trace", "jit-unknown-exit-reason"}

    def test_unpaired_exit_strict(self):
        report = conform_events([_ev(10, "jit", "trace_exit", blocks=1, reason="cold")])
        assert _codes(report) == ["jit-unpaired-trace-exit"]

    def test_leading_exit_forgiven_when_windowed(self):
        report = conform_events(
            [_ev(10, "jit", "trace_exit", blocks=1, reason="smc")], dropped=5
        )
        assert report.ok


class TestMorph:
    def _flip(self, cycle, old, new, hysteresis=100):
        return _ev(cycle, "morph", "reconfig", "manager",
                   old=old, new=new, hysteresis=hysteresis)

    def test_alternating_flips(self):
        report = conform_events([
            self._flip(0, "(initial)", "trans"),
            self._flip(500, "trans", "mem"),
            self._flip(1000, "mem", "trans"),
        ])
        assert report.ok

    def test_noop_reconfig(self):
        report = conform_events([self._flip(500, "trans", "trans")])
        assert "morph-noop-reconfig" in _codes(report)

    def test_alternation_broken(self):
        report = conform_events([
            self._flip(0, "(initial)", "trans"),
            self._flip(500, "mem", "trans"),
        ])
        assert _codes(report) == ["morph-alternation-broken"]

    def test_initial_must_come_first(self):
        report = conform_events([
            self._flip(500, "trans", "mem"),
            self._flip(900, "(initial)", "trans"),
        ])
        assert "morph-initial-not-first" in _codes(report)

    def test_hysteresis_violated(self):
        report = conform_events([
            self._flip(0, "(initial)", "trans"),
            self._flip(500, "trans", "mem", hysteresis=100),
            self._flip(550, "mem", "trans", hysteresis=100),
        ])
        assert _codes(report) == ["morph-hysteresis-violated"]

    def test_time_regression(self):
        report = conform_events([
            self._flip(0, "(initial)", "trans"),
            self._flip(900, "trans", "mem"),
            self._flip(500, "mem", "trans"),
        ])
        assert "morph-time-regression" in _codes(report)


class TestSmc:
    def test_write_then_invalidate(self):
        report = conform_events([
            _ev(10, "smc", "write", gen=1, page=16),
            _ev(50, "smc", "invalidate", gen=1, page=16, victims=2),
        ])
        assert report.ok

    def test_invalidate_without_write_strict(self):
        report = conform_events([_ev(50, "smc", "invalidate", gen=1, page=16)])
        assert "smc-invalidate-without-write" in _codes(report)

    def test_invalidate_without_write_forgiven_windowed(self):
        report = conform_events(
            [_ev(50, "smc", "invalidate", gen=1, page=16)], dropped=9
        )
        assert report.ok

    def test_generation_regression(self):
        report = conform_events([
            _ev(10, "smc", "write", gen=5, page=16),
            _ev(20, "smc", "write", gen=3, page=17),
        ])
        assert "smc-gen-regression" in _codes(report)

    def test_invalidate_unwritten_page(self):
        report = conform_events([
            _ev(10, "smc", "write", gen=1, page=16),
            _ev(50, "smc", "invalidate", gen=1, page=99),
        ])
        assert "smc-invalidate-unwritten-page" in _codes(report)


class TestCodecache:
    def test_levels(self):
        report = conform_events([
            _ev(10, "codecache", "hit", level="l1"),
            _ev(20, "codecache", "miss", level="l1.5"),
            _ev(30, "codecache", "hit", level="l2"),
        ])
        assert report.ok

    def test_unknown_level(self):
        report = conform_events([_ev(10, "codecache", "hit", level="l9")])
        assert _codes(report) == ["codecache-unknown-level"]


class TestLiveRuns:
    def test_smc_workload_emits_and_conforms(self):
        program = assemble(SMC_PROGRAM)
        program.name = "smc"
        vm = TimingVM(program, PRESETS["default"], tracer=Tracer())
        vm.run()
        counts = vm.tracer.counts_by_category()
        assert counts.get("smc", 0) >= 2  # at least one write + invalidate
        names = {e.name for e in vm.tracer.events() if e.category == "smc"}
        assert names == {"write", "invalidate"}
        report = conform_vm(vm)
        assert report.ok, "\n".join(str(f) for f in report.findings)

    def test_raw_dict_round_trip(self):
        program = assemble(SMC_PROGRAM)
        program.name = "smc"
        vm = TimingVM(program, PRESETS["morph_threshold_5"], tracer=Tracer())
        vm.run()
        live = conform_vm(vm)
        raw = json.loads(json.dumps([e.as_dict() for e in vm.tracer.events()]))
        replayed = conform_events(raw, dropped=vm.tracer.dropped)
        assert replayed.ok == live.ok
        assert replayed.events == live.events
        assert replayed.checks == live.checks

    def test_workload_with_jit_conforms(self):
        from repro.workloads.suite import build_workload

        program = build_workload("164.gzip", scale=0.02)
        vm = TimingVM(program, PRESETS["morph_threshold_5"], tracer=Tracer(), jit=True)
        vm.run()
        report = conform_vm(vm)
        assert report.ok, "\n".join(str(f) for f in report.findings)
        assert report.counts.get("jit", 0) > 0


class TestCheckedProtocolMode:
    def test_checked_run_passes_and_matches_unchecked(self):
        program = assemble(SMC_PROGRAM)
        program.name = "smc"
        checked_vm = TimingVM(program, PRESETS["default"], checked="protocol")
        checked = checked_vm.run()
        assert checked_vm.protocol_report is not None
        assert checked_vm.protocol_report.ok
        plain = TimingVM(assemble(SMC_PROGRAM), PRESETS["default"]).run()
        assert checked.exit_code == plain.exit_code
        assert checked.cycles == plain.cycles

    def test_checked_mode_installs_tracer(self):
        program = assemble(SMC_PROGRAM)
        vm = TimingVM(program, PRESETS["default"], checked="protocol")
        assert vm.tracer.enabled

    def test_unknown_checked_mode_rejected(self):
        with pytest.raises(ValueError):
            TimingVM(assemble(SMC_PROGRAM), PRESETS["default"], checked="equiv")

    def test_violation_raises(self, monkeypatch):
        program = assemble(SMC_PROGRAM)
        program.name = "smc"
        vm = TimingVM(program, PRESETS["default"], checked="protocol")
        # corrupt the stream after the run, before the conformance replay
        vm.tracer.emit(0, "smc", "invalidate", "execution", gen=-1, page=0)
        with pytest.raises(VerificationError) as err:
            vm.run()
        assert any(f.code == "smc-bad-generation" for f in err.value.findings)


class TestConformCli:
    def test_raw_trace_file(self, tmp_path, capsys):
        from repro.verify.cli import main

        program = assemble(SMC_PROGRAM)
        program.name = "smc"
        vm = TimingVM(program, PRESETS["default"], tracer=Tracer())
        vm.run()
        path = tmp_path / "raw.json"
        path.write_text(json.dumps({
            "schema": "repro.obs.rawtrace/1",
            "dropped": vm.tracer.dropped,
            "events": [e.as_dict() for e in vm.tracer.events()],
        }))
        out_json = tmp_path / "report.json"
        assert main(["conform", str(path), "--json", str(out_json)]) == 0
        rows = json.loads(out_json.read_text())
        assert rows[0]["ok"] is True
        assert rows[0]["events"] == len(vm.tracer.events())

    def test_rejects_non_trace_json(self, tmp_path):
        from repro.verify.cli import main

        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(SystemExit):
            main(["conform", str(path)])

    def test_violating_trace_fails(self, tmp_path, capsys):
        from repro.verify.cli import main

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "dropped": 0,
            "events": [_ev(10, "specq", "enqueue", qlen=9)],
        }))
        assert main(["conform", str(path)]) == 1
        assert "specq-qlen-mismatch" in capsys.readouterr().out

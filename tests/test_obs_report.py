"""Run reports, report diffing, the obs CLI, and the bounded run cache."""

import json
from pathlib import Path

import pytest

from repro.guest.assembler import assemble
from repro.harness import runner
from repro.morph.config import PRESETS
from repro.obs.cli import main
from repro.obs.report import (
    build_report,
    diff_reports,
    load_report,
    render_diff,
    render_report,
    save_report,
)
from repro.vm.timing import TimingVM

DATA_DIR = Path(__file__).parent / "data"
ASM_PATH = str(DATA_DIR / "trace_workload.asm")


@pytest.fixture(scope="module")
def result():
    source = (DATA_DIR / "trace_workload.asm").read_text()
    program = assemble(source, name="trace_workload")
    return TimingVM(program, PRESETS["speculative_4"]).run()


class TestReport:
    def test_build_report_headline_fields(self, result):
        report = build_report(result)
        assert report["workload"] == "trace_workload"
        assert report["config"] == "speculative_4"
        assert report["exit_code"] == 36
        assert report["cycles"] == result.cycles
        assert report["slowdown"] == round(result.slowdown, 4)
        assert isinstance(report["counters"], dict)
        assert "histograms" in report and "timeseries" in report
        json.dumps(report)  # the whole report must be JSON-safe

    def test_report_roundtrips_through_disk(self, result, tmp_path):
        report = build_report(result)
        path = tmp_path / "report.json"
        save_report(str(path), report)
        assert load_report(str(path)) == json.loads(json.dumps(report))

    def test_load_rejects_non_reports(self, tmp_path):
        path = tmp_path / "not_a_report.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(ValueError):
            load_report(str(path))

    def test_render_report_mentions_headlines(self, result):
        text = render_report(build_report(result))
        assert "run report: trace_workload / speculative_4" in text
        assert "slowdown" in text
        assert "-- distributions --" in text
        assert "translate.latency" in text

    def test_diff_reports_flags_changed_fields(self, result):
        before = build_report(result)
        after = dict(before)
        after["cycles"] = before["cycles"] + 100
        after["counters"] = dict(before["counters"])
        after["counters"]["spec.blocks_translated"] = 999_999
        rows = {row["field"]: row for row in diff_reports(before, after)}
        assert rows["cycles"]["delta"] == 100
        assert rows["counters.spec.blocks_translated"]["after"] == 999_999
        assert "slowdown" not in rows or rows["slowdown"]["delta"] == 0

    def test_diff_identical_reports_is_quiet(self, result):
        report = build_report(result)
        scalar_rows = [
            row for row in diff_reports(report, report) if row["delta"] != 0
        ]
        assert scalar_rows == []
        text = render_diff(report, report)
        assert "trace_workload" in text


class TestCli:
    def test_trace_writes_valid_perfetto_json(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main([
            "trace", "--workload", ASM_PATH, "--config", "speculative_4",
            "--out", str(out),
        ])
        assert code == 0
        doc = json.loads(out.read_text())
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
        assert main(["validate", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "events retained" in printed
        assert "valid trace_event JSON" in printed

    def test_trace_capacity_bounds_retained_events(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main([
            "trace", "--workload", ASM_PATH, "--config", "speculative_4",
            "--out", str(out), "--capacity", "10",
        ]) == 0
        assert "dropped" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        timed = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        # 10 retained events; translate start/end pairs may fold into one
        assert 0 < len(timed) <= 2 * 10

    def test_report_and_diff_roundtrip(self, tmp_path, capsys):
        before = tmp_path / "before.json"
        after = tmp_path / "after.json"
        for path, config in ((before, "speculative_4"), (after, "conservative_1")):
            assert main([
                "report", "--workload", ASM_PATH, "--config", config,
                "--json", str(path),
            ]) == 0
        assert main(["diff", str(before), str(after)]) == 0
        text = capsys.readouterr().out
        assert "report diff" in text
        assert "cycles" in text

    def test_validate_rejects_broken_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({
            "traceEvents": [{"ph": "Z", "name": "x", "pid": 1, "tid": 1, "ts": 0}]
        }))
        assert main(["validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_unknown_workload_exits_with_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "trace", "--workload", "999.nope",
                "--out", str(tmp_path / "x.json"),
            ])


class TestRunnerCache:
    def test_run_one_memoizes_and_counts(self):
        runner.clear_cache()
        before = runner.cache_stats()
        first = runner.run_one("164.gzip", "default", scale=0.05)
        second = runner.run_one("164.gzip", "default", scale=0.05)
        assert first is second
        stats = runner.cache_stats()
        assert stats["run_cache.misses"] == before.get("run_cache.misses", 0) + 1
        assert stats["run_cache.hits"] == before.get("run_cache.hits", 0) + 1
        assert stats["size"] >= 1
        runner.clear_cache()

    def test_cache_is_bounded(self):
        assert runner.cache_stats()["capacity"] == runner.RUN_CACHE_CAPACITY
        assert runner._CACHE.capacity == 256

"""Planted optimizer bugs must be caught and attributed to their pass.

Each test wraps one real optimizer pass with a deliberate semantic
mutation, runs the pipeline under an :class:`EquivChecker` observer,
and asserts the resulting :class:`VerificationError` names exactly the
buggy pass (stage ``"<pass>#<iteration>"``) — not the frontend, not a
later pass.  A control test proves the unmutated pipeline is clean.
"""

import pytest

from repro.dbt.frontend import lower_block, scan_block
from repro.dbt.ir import ALL_FLAGS_MASK, UOpKind
from repro.dbt.optimizer import optimize_block
from repro.dbt.optimizer.constfold import STRENGTH_PASS_NAME, fold_constants, reduce_strength
from repro.dbt.optimizer.copyprop import propagate_copies
from repro.dbt.optimizer.dce import eliminate_dead_code
from repro.dbt.optimizer.deadflags import eliminate_dead_flags
from repro.dbt.optimizer.valuenumber import number_values
from repro.guest.assembler import assemble
from repro.guest.isa import Register
from repro.guest.memory import GuestMemory
from repro.verify.equiv import EquivChecker
from repro.verify.findings import VerificationError

PROGRAM = """
_start:
    add eax, ebx
    shl ecx, 3
    mov esi, [buf]
    mov [buf], eax
    mov edi, [buf]
    sub edx, 5
    int 0x80
.data
buf: dd 0
"""


def checker_and_ir():
    program = assemble(PROGRAM)
    memory = GuestMemory()
    program.load(memory)
    guest = scan_block(lambda addr, n: memory.read_bytes(addr, n), program.entry)
    ir = lower_block(guest)
    checker = EquivChecker(guest, ir, ALL_FLAGS_MASK, context="planted")
    assert checker.stats.refuted == 0, "frontend must be clean before planting"
    return checker, ir


def run_with(checker, ir, name, buggy_pass):
    optimize_block(
        ir,
        iterations=1,
        flag_live_out=ALL_FLAGS_MASK,
        observer=checker.observe,
        passes=[(name, buggy_pass)],
    )


def expect_attribution(name, buggy_pass):
    checker, ir = checker_and_ir()
    with pytest.raises(VerificationError) as excinfo:
        run_with(checker, ir, name, buggy_pass)
    assert excinfo.value.stage == f"{name}#0"
    assert checker.stats.refuted == 1
    return excinfo.value


class TestPlantedBugs:
    def test_copyprop_propagates_wrong_register(self):
        def buggy(block, live_out):
            propagate_copies(block)
            for uop in block.uops:
                if uop.kind is UOpKind.GET:
                    uop.reg = Register((int(uop.reg) + 1) % 8)
                    return

        expect_attribution("copyprop", buggy)

    def test_constfold_off_by_one(self):
        def buggy(block, live_out):
            fold_constants(block)
            for uop in block.uops:
                if uop.kind is UOpKind.CONST:
                    uop.imm = (uop.imm + 1) & 0xFFFFFFFF
                    return

        expect_attribution("constfold", buggy)

    def test_strength_reduction_wrong_shift(self):
        def buggy(block, live_out):
            reduce_strength(block)
            for uop in block.uops:
                if uop.kind is UOpKind.SHL:
                    uop.kind = UOpKind.SHR
                    return

        expect_attribution(STRENGTH_PASS_NAME, buggy)

    def test_valuenumber_reuses_load_across_store(self):
        def buggy(block, live_out):
            number_values(block)
            loads = [uop for uop in block.uops if uop.kind is UOpKind.LD]
            puts = {uop.reg: uop for uop in block.uops if uop.kind is UOpKind.PUT}
            # Pretend the post-store load was "the same value" as the
            # pre-store one: exactly the aliasing bug value numbering
            # must not commit.
            puts[Register.EDI].a = loads[0].dst

        expect_attribution("valuenumber", buggy)

    def test_deadflags_ignores_exit_liveness(self):
        def buggy(block, live_out):
            eliminate_dead_flags(block, 0)  # pretend nothing is live out

        expect_attribution("deadflags", buggy)

    def test_dce_drops_live_store(self):
        def buggy(block, live_out):
            eliminate_dead_code(block)
            for uop in block.uops:
                if uop.kind is UOpKind.ST:
                    block.uops.remove(uop)
                    return

        expect_attribution("dce", buggy)

    def test_clean_pipeline_verifies(self):
        checker, ir = checker_and_ir()
        optimize_block(
            ir, iterations=2, flag_live_out=ALL_FLAGS_MASK, observer=checker.observe
        )
        assert checker.stats.refuted == 0
        assert checker.stats.proved > 0

    def test_scheduler_reorders_dependent_instructions(self):
        from repro.dbt.codegen import generate_block

        checker, ir = checker_and_ir()
        optimize_block(ir, iterations=2, flag_live_out=ALL_FLAGS_MASK, observer=checker.observe)
        block = generate_block(ir)
        checker.check_host(block.instrs, "codegen")
        assert checker.stats.refuted == 0

        instrs = list(block.instrs)
        swapped = False
        for i in range(len(instrs) - 1):
            first, second = instrs[i], instrs[i + 1]
            if first.op.name in ("BEQ", "BNE", "EXITB") or second.op.name in (
                "BEQ", "BNE", "EXITB"
            ):
                continue
            written = first.writes()
            if written is not None and written in second.reads():
                instrs[i], instrs[i + 1] = second, first
                swapped = True
                break
        assert swapped, "expected a dependent pair to swap"
        with pytest.raises(VerificationError) as excinfo:
            checker.check_host(instrs, "scheduler")
        assert excinfo.value.stage == "scheduler"

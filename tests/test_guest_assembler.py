"""Tests for the VX86 text assembler."""

import pytest

from repro.guest.assembler import AssemblyError, assemble
from repro.guest.decoder import decode_instruction
from repro.guest.isa import Immediate, MemoryOperand, Op, Register, RegisterOperand
from repro.guest.program import TEXT_BASE


def decode_all(program):
    """Decode the whole .text section into a list of instructions."""
    code = program.text.data
    out = []
    offset = 0
    while offset < len(code):
        instr = decode_instruction(code, offset, program.text.address + offset)
        out.append(instr)
        offset += instr.length
    return out


class TestBasicAssembly:
    def test_simple_program(self):
        program = assemble(
            """
            _start:
                mov eax, 1
                add eax, 2
                hlt
            """
        )
        ops = [i.op for i in decode_all(program)]
        assert ops == [Op.MOV, Op.ADD, Op.HLT]
        assert program.entry == TEXT_BASE

    def test_entry_defaults_to_start_label(self):
        program = assemble("nop\n_start: hlt\n")
        assert program.entry == TEXT_BASE + 1

    def test_explicit_entry_directive(self):
        program = assemble(".entry main\nnop\nmain: hlt\n")
        assert program.entry == program.symbols["main"]

    def test_labels_and_branches(self):
        program = assemble(
            """
            _start:
                mov ecx, 10
            top:
                dec ecx
                jnz top
                hlt
            """
        )
        instrs = decode_all(program)
        jnz = next(i for i in instrs if i.op is Op.JCC)
        assert jnz.target == program.symbols["top"]

    def test_forward_references(self):
        program = assemble(
            """
            _start:
                jmp done
                nop
            done:
                hlt
            """
        )
        instrs = decode_all(program)
        assert instrs[0].target == program.symbols["done"]

    def test_comments_and_blank_lines(self):
        program = assemble("; leading comment\n\n_start:\n  nop  # trailing\n  hlt\n")
        assert [i.op for i in decode_all(program)] == [Op.NOP, Op.HLT]

    def test_label_on_same_line_as_instruction(self):
        program = assemble("_start: nop\nhlt\n")
        assert program.symbols["_start"] == TEXT_BASE


class TestOperandParsing:
    def test_memory_operands(self):
        program = assemble("_start: mov eax, [ebx + ecx*4 + 8]\nhlt\n")
        instr = decode_all(program)[0]
        assert instr.src == MemoryOperand(Register.EBX, Register.ECX, 4, 8)

    def test_negative_displacement(self):
        program = assemble("_start: mov eax, [ebp - 12]\nhlt\n")
        instr = decode_all(program)[0]
        assert instr.src == MemoryOperand(Register.EBP, None, 1, -12)

    def test_absolute_memory(self):
        program = assemble("_start: mov eax, [0x8400000]\nhlt\n")
        instr = decode_all(program)[0]
        assert instr.src == MemoryOperand(None, None, 1, 0x8400000)

    def test_label_as_displacement(self):
        program = assemble(
            """
            _start: mov eax, [buffer + 4]
            hlt
            .data
            buffer: dd 1, 2, 3
            """
        )
        instr = decode_all(program)[0]
        assert instr.src.disp == program.symbols["buffer"] + 4

    def test_equ_constants_and_expressions(self):
        program = assemble(
            """
            COUNT equ 10
            SIZE equ COUNT * 4
            _start: mov eax, SIZE + (1 << 8)
            hlt
            """
        )
        instr = decode_all(program)[0]
        assert instr.src == Immediate(40 + 256)

    def test_char_literal(self):
        program = assemble("_start: mov eax, 'A'\nhlt\n")
        assert decode_all(program)[0].src == Immediate(65)

    def test_byte_width_mnemonics(self):
        program = assemble("_start: movb [eax], 5\naddb bl, 1\nhlt\n".replace("bl", "ebx"))
        instrs = decode_all(program)
        assert instrs[0].width == 8
        assert instrs[1].width == 8

    def test_shift_by_cl(self):
        program = assemble("_start: shl eax, ecx\nhlt\n")
        instr = decode_all(program)[0]
        assert instr.op is Op.SHL
        assert instr.src == RegisterOperand(Register.ECX)

    def test_condition_aliases(self):
        program = assemble("_start: je x\njz x\njnae x\nx: hlt\n")
        instrs = decode_all(program)
        assert instrs[0].cc == instrs[1].cc  # je == jz


class TestDataDirectives:
    def test_db_dd_dz(self):
        program = assemble(
            """
            _start: hlt
            .data
            bytes: db 1, 2, 0xFF
            words: dd 0x11223344, words
            zeros: dz 16
            """
        )
        data = next(s for s in program.sections if s.name == ".data")
        assert data.data[:3] == bytes([1, 2, 0xFF])
        assert data.data[3:7] == (0x11223344).to_bytes(4, "little")
        assert data.data[7:11] == program.symbols["words"].to_bytes(4, "little")
        assert data.data[11:27] == bytes(16)

    def test_string_literal(self):
        program = assemble('_start: hlt\n.data\nmsg: db "hi\\n"\n')
        data = next(s for s in program.sections if s.name == ".data")
        assert data.data == b"hi\n"

    def test_align(self):
        program = assemble("_start: hlt\n.data\ndb 1\n.align 8\naligned: db 2\n")
        assert program.symbols["aligned"] % 8 == 0


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError):
            assemble("_start: frobnicate eax\n")

    def test_undefined_symbol(self):
        with pytest.raises(AssemblyError):
            assemble("_start: mov eax, nosuchlabel\nhlt\n")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError):
            assemble("x: nop\nx: nop\n")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError):
            assemble("_start: add eax\n")

    def test_bad_shift_count_register(self):
        with pytest.raises(AssemblyError):
            assemble("_start: shl eax, ebx\n")

    def test_unterminated_memory_operand(self):
        with pytest.raises(AssemblyError):
            assemble("_start: mov eax, [ebx\n")


class TestIndirectBranches:
    def test_call_through_register(self):
        program = assemble("_start: call eax\nhlt\n")
        instr = decode_all(program)[0]
        assert instr.op is Op.CALL
        assert instr.is_indirect_branch

    def test_jmp_through_table(self):
        program = assemble(
            """
            _start: jmp [table + eax*4]
            hlt
            .data
            table: dd _start
            """
        )
        instr = decode_all(program)[0]
        assert instr.op is Op.JMP
        assert instr.dst.index is Register.EAX

    def test_call_label_is_direct(self):
        program = assemble("_start: call fn\nhlt\nfn: ret\n")
        instr = decode_all(program)[0]
        assert instr.target == program.symbols["fn"]
        assert not instr.is_indirect_branch

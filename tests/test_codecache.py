"""Tests for the code cache hierarchy and the speculative translation
subsystem."""

import pytest

from repro.guest.assembler import assemble
from repro.guest.interpreter import GuestFault
from repro.dbt.codecache import (
    CodeCacheHierarchy,
    DISPATCH_OVERHEAD,
    L1CodeCache,
)
from repro.dbt.predictor import predict_successors
from repro.dbt.speculative import TranslationSubsystem
from repro.dbt.translator import TranslationConfig, Translator
from repro.tiled.machine import default_placement
from repro.tiled.network import Network
from repro.tiled.resource import Resource


def make_translator(source: str) -> Translator:
    program = assemble(source)
    text = program.text

    def read(address, length):
        offset = address - text.address
        if offset < 0 or offset >= len(text.data):
            raise GuestFault(address, "code fetch outside .text")
        return text.data[offset : offset + length]

    translator = Translator(read, TranslationConfig())
    translator.program = program  # test convenience
    return translator


LOOP = """
_start:
    mov ecx, 10
top:
    dec ecx
    jnz top
    call fn
    hlt
fn:
    ret
"""


def make_subsystem(source=LOOP, slaves=4, speculative=True):
    translator = make_translator(source)
    subsystem = TranslationSubsystem(
        translator, slave_count=slaves, manager=Resource("manager"), speculative=speculative
    )
    return subsystem, translator.program


class TestL1CodeCache:
    def _block(self, translator, pc):
        return translator.translate(pc)

    def test_insert_and_lookup(self):
        translator = make_translator(LOOP)
        cache = L1CodeCache()
        block = translator.translate(translator.program.entry)
        cache.insert(block)
        assert cache.lookup(block.guest_address) is block
        assert cache.lookup(0x1234) is None

    def test_tight_packing_flushes_when_full(self):
        translator = make_translator(LOOP)
        block = translator.translate(translator.program.entry)
        cache = L1CodeCache(capacity_bytes=block.host_size_bytes + 8)
        assert not cache.insert(block)
        other = translator.translate(translator.program.symbols["fn"])
        flushed = cache.insert(other)
        assert flushed
        assert cache.lookup(block.guest_address) is None  # flushed away
        assert cache.lookup(other.guest_address) is other

    def test_chaining_requires_residency_and_stub(self):
        translator = make_translator(LOOP)
        cache = L1CodeCache()
        entry_block = translator.translate(translator.program.entry)
        top = entry_block.direct_successors()[0]
        top_block = translator.translate(top)
        cache.insert(entry_block)
        assert not cache.try_chain(entry_block.guest_address, top)  # target absent
        cache.insert(top_block)
        assert cache.try_chain(entry_block.guest_address, top)
        assert cache.is_chained(entry_block.guest_address, top)
        assert not cache.try_chain(entry_block.guest_address, top)  # idempotent

    def test_flush_clears_chains(self):
        translator = make_translator(LOOP)
        cache = L1CodeCache()
        entry_block = translator.translate(translator.program.entry)
        top = entry_block.direct_successors()[0]
        cache.insert(entry_block)
        cache.insert(translator.translate(top))
        cache.try_chain(entry_block.guest_address, top)
        cache.flush()
        assert not cache.is_chained(entry_block.guest_address, top)


class TestPredictor:
    def test_backward_branch_predicted_taken(self):
        translator = make_translator(LOOP)
        # block at `top`: dec ecx; jnz top (backward)
        top = translator.program.symbols["top"]
        block = translator.translate(top)
        predictions = predict_successors(block)
        assert predictions[0].target == top  # loop back edge first
        assert predictions[0].depth_bonus == 0
        assert predictions[1].depth_bonus == 1

    def test_call_return_predicted_low_priority(self):
        translator = make_translator(LOOP)
        # find the call block (starts after jnz falls through)
        program = translator.program
        jnz_fall = None
        block = translator.translate(program.symbols["top"])
        jnz_fall = block.direct_successors()[0]
        call_block = translator.translate(jnz_fall)
        predictions = predict_successors(call_block)
        returns = [p for p in predictions if p.target == call_block.call_return_address]
        assert returns
        assert returns[0].depth_bonus >= 3

    def test_forward_branch_predicts_fallthrough(self):
        translator = make_translator(
            "_start: cmp eax, 0\nje fwd\nmov eax, 1\nfwd: hlt\n"
        )
        block = translator.translate(translator.program.entry)
        predictions = predict_successors(block)
        fallthrough = block.direct_successors()[0]
        assert predictions[0].target == fallthrough
        assert predictions[0].depth_bonus == 0


class TestTranslationSubsystem:
    def test_demand_translation_when_cold(self):
        subsystem, program = make_subsystem()
        result = subsystem.demand_request(program.entry, now=0)
        assert result.translated_on_demand
        assert result.block.guest_address == program.entry
        assert result.ready_time > 0

    def test_speculation_runs_ahead(self):
        subsystem, program = make_subsystem()
        first = subsystem.demand_request(program.entry, now=0)
        # give the slaves plenty of time to speculate down the CFG
        subsystem.advance(first.ready_time + 500_000)
        top = first.block.direct_successors()[0]
        entry = subsystem.lookup(top)
        assert entry is not None
        assert entry.state.value == "done"
        # second demand request should be a speculation hit
        result = subsystem.demand_request(top, now=first.ready_time + 500_000)
        assert not result.translated_on_demand

    def test_conservative_mode_never_speculates(self):
        subsystem, program = make_subsystem(speculative=False)
        first = subsystem.demand_request(program.entry, now=0)
        subsystem.advance(first.ready_time + 1_000_000)
        assert subsystem.stats["speculative_translations"] == 0
        top = first.block.direct_successors()[0]
        assert subsystem.lookup(top) is None

    def test_demand_waits_for_busy_slaves(self):
        # 1 slave, speculative: the slave picks up speculative work;
        # a demand miss must wait for it (no preemption)
        subsystem, program = make_subsystem(slaves=1)
        first = subsystem.demand_request(program.entry, now=0)
        # issue a demand for an address the slave has not reached while
        # it is busy speculating
        fn = None
        for name, addr in make_translator(LOOP).program.symbols.items():
            if name == "fn":
                fn = addr
        result = subsystem.demand_request(fn, now=first.ready_time + 1)
        assert result.ready_time >= first.ready_time

    def test_speculation_failure_is_tolerated(self):
        # fallthrough after hlt runs into the data-less end of .text;
        # speculation simply marks it failed
        subsystem, program = make_subsystem(
            "_start: cmp eax, 0\nje over\nhlt\nover: hlt\n"
        )
        first = subsystem.demand_request(program.entry, now=0)
        subsystem.advance(first.ready_time + 1_000_000)
        assert subsystem.stats["blocks_translated"] >= 1

    def test_queue_length_drains_over_time(self):
        subsystem, program = make_subsystem()
        subsystem.demand_request(program.entry, now=0)
        subsystem.advance(10_000_000)
        assert subsystem.queue_length() == 0

    def test_set_slave_count(self):
        subsystem, _ = make_subsystem(slaves=6)
        subsystem.set_slave_count(9, now=100)
        assert subsystem.slave_count == 9
        subsystem.set_slave_count(6, now=200)
        assert subsystem.slave_count == 6
        with pytest.raises(ValueError):
            subsystem.set_slave_count(0, now=300)


class TestCodeCacheHierarchy:
    def make_hierarchy(self, source=LOOP, l15_banks=2):
        translator = make_translator(source)
        grid = default_placement(6, 4, l15_bank_tiles=2)
        subsystem = TranslationSubsystem(
            translator, slave_count=4, manager=Resource("manager")
        )
        hierarchy = CodeCacheHierarchy(
            grid, Network(), subsystem, l15_banks=l15_banks
        )
        return hierarchy, translator.program

    def test_cold_fetch_translates(self):
        hierarchy, program = self.make_hierarchy()
        result = hierarchy.fetch(0, program.entry, prev_pc=None, indirect=False)
        assert result.level == "translate"
        assert result.ready_time > DISPATCH_OVERHEAD
        assert hierarchy.stats["l2_accesses"] == 1
        assert hierarchy.stats["l2_misses"] == 1

    def test_warm_fetch_hits_l1(self):
        hierarchy, program = self.make_hierarchy()
        first = hierarchy.fetch(0, program.entry, None, False)
        second = hierarchy.fetch(first.ready_time + 10, program.entry, None, False)
        assert second.level == "l1"
        assert second.ready_time - (first.ready_time + 10) <= DISPATCH_OVERHEAD + 12

    def test_chained_fetch_is_free(self):
        hierarchy, program = self.make_hierarchy()
        entry_result = hierarchy.fetch(0, program.entry, None, False)
        # the entry block ends in `jnz top`; the taken (backward) target
        # is a self-looping block: dec ecx; jnz top
        top = entry_result.block.direct_successors()[1]
        t = entry_result.ready_time
        top_result = hierarchy.fetch(t, top, program.entry, False)
        t = top_result.ready_time
        # looping back: top -> top gets chained after the first transit
        r1 = hierarchy.fetch(t, top, top, False)
        r2 = hierarchy.fetch(r1.ready_time, top, top, False)
        assert r2.chained_entry
        assert r2.ready_time == r1.ready_time  # zero-cost dispatch

    def test_indirect_entry_never_chains(self):
        hierarchy, program = self.make_hierarchy()
        first = hierarchy.fetch(0, program.entry, None, False)
        t = first.ready_time
        hierarchy.fetch(t, program.entry, program.entry, True)
        result = hierarchy.fetch(t + 1000, program.entry, program.entry, True)
        assert not result.chained_entry

    def test_l15_serves_after_l1_flush(self):
        hierarchy, program = self.make_hierarchy()
        first = hierarchy.fetch(0, program.entry, None, False)
        hierarchy.l1.flush()
        result = hierarchy.fetch(first.ready_time + 100, program.entry, None, False)
        assert result.level == "l1.5"

    def test_without_l15_misses_go_to_manager(self):
        hierarchy, program = self.make_hierarchy(l15_banks=0)
        first = hierarchy.fetch(0, program.entry, None, False)
        hierarchy.l1.flush()
        result = hierarchy.fetch(first.ready_time + 100, program.entry, None, False)
        assert result.level == "l2"
        assert hierarchy.stats["l2_accesses"] == 2

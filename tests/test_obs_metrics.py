"""Metrics registry: histogram bucketing, decimation, JSON-safety."""

import json

import pytest

from repro.common.stats import RunningMean
from repro.obs.metrics import Histogram, MetricsRegistry, TimeSeries


class TestHistogram:
    def test_bucketing_edges(self):
        hist = Histogram("latency", buckets=(10, 100))
        for value in (0, 10, 11, 100, 101, 5000):
            hist.observe(value)
        # bisect_left: a value equal to a bound lands in that bound's bucket
        assert hist.counts == [2, 2, 2]
        assert hist.count == 6

    def test_single_bucket_overflow(self):
        hist = Histogram("h", buckets=(1,))
        hist.observe(0)
        hist.observe(1)
        hist.observe(2)
        assert hist.counts == [2, 1]

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(10, 5))
        with pytest.raises(ValueError):
            Histogram("dup", buckets=(5, 5, 10))
        with pytest.raises(ValueError):
            Histogram("empty", buckets=())

    def test_quantile(self):
        hist = Histogram("q", buckets=(10, 20, 30))
        for value in (5, 5, 15, 15, 15, 25, 25, 25, 25, 40):
            hist.observe(value)
        assert hist.quantile(0.0) == 0.0 or hist.quantile(0.0) <= 10
        assert hist.quantile(0.2) == 10
        assert hist.quantile(0.5) == 20
        assert hist.quantile(0.9) == 30
        assert hist.quantile(1.0) == 40  # overflow bucket reports observed max
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_quantile_empty(self):
        assert Histogram("e").quantile(0.5) == 0.0

    def test_merge(self):
        left = Histogram("h", buckets=(10, 100))
        right = Histogram("h", buckets=(10, 100))
        for value in (1, 50):
            left.observe(value)
        for value in (200, 3):
            right.observe(value)
        left.merge(right)
        assert left.counts == [2, 1, 1]
        assert left.count == 4
        assert left.track.minimum == 1
        assert left.track.maximum == 200

    def test_merge_rejects_mismatched_buckets(self):
        with pytest.raises(ValueError):
            Histogram("a", buckets=(10,)).merge(Histogram("b", buckets=(20,)))

    def test_as_dict_is_json_safe(self):
        hist = Histogram("h", buckets=(10,))
        dumped = json.dumps(hist.as_dict())
        assert "Infinity" not in dumped
        hist.observe(5)
        data = hist.as_dict()
        assert data["buckets"] == [10]
        assert data["counts"] == [1, 0]
        assert data["min"] == 5
        assert data["max"] == 5


class TestTimeSeries:
    def test_records_every_sample_until_full(self):
        series = TimeSeries("q", capacity=8)
        for cycle in range(5):
            series.sample(cycle * 10, cycle)
        assert series.samples == [(0, 0), (10, 1), (20, 2), (30, 3), (40, 4)]
        assert series.stride == 1

    def test_decimation_doubles_stride_and_stays_bounded(self):
        series = TimeSeries("q", capacity=8)
        for cycle in range(1000):
            series.sample(cycle, cycle)
        assert len(series.samples) <= 8
        assert series.observed == 1000
        assert series.stride > 1
        # the first sample is always retained; the rest stay evenly strided
        assert series.samples[0] == (0, 0)
        cycles = [cycle for cycle, _ in series.samples]
        assert cycles == sorted(cycles)
        gaps = {b - a for a, b in zip(cycles, cycles[1:])}
        assert len(gaps) == 1  # uniform spacing after decimation

    def test_rejects_tiny_capacity(self):
        with pytest.raises(ValueError):
            TimeSeries("q", capacity=1)

    def test_as_dict(self):
        series = TimeSeries("q", capacity=4)
        series.sample(7, 3.5)
        data = series.as_dict()
        assert data["samples"] == [[7, 3.5]]
        assert data["observed"] == 1
        json.dumps(data)


class TestRunningMean:
    def test_empty_as_dict_has_no_infinities(self):
        data = RunningMean().as_dict()
        assert data == {"count": 0, "total": 0, "mean": 0.0, "min": None, "max": None}
        dumped = json.dumps(data)
        assert "Infinity" not in dumped

    def test_as_dict_after_observations(self):
        track = RunningMean()
        for value in (4, 2, 6):
            track.observe(value)
        assert track.as_dict() == {
            "count": 3, "total": 12, "mean": 4.0, "min": 2, "max": 6,
        }

    def test_merge(self):
        left, right = RunningMean(), RunningMean()
        left.observe(10)
        right.observe(2)
        right.observe(30)
        left.merge(right)
        assert left.count == 3
        assert left.total == 42
        assert left.minimum == 2
        assert left.maximum == 30

    def test_merge_with_empty_is_identity(self):
        track = RunningMean()
        track.observe(5)
        track.merge(RunningMean())
        assert track.as_dict()["min"] == 5
        assert track.as_dict()["max"] == 5
        empty = RunningMean()
        empty.merge(track)
        assert empty.as_dict() == track.as_dict()


class TestMetricsRegistry:
    def test_counters_still_work(self):
        registry = MetricsRegistry("r")
        registry.bump("hits")
        registry.bump("hits", 2)
        assert registry.as_dict()["hits"] == 3

    def test_observe_and_snapshot(self):
        registry = MetricsRegistry("r")
        registry.bump("runs")
        registry.observe("latency", 42, buckets=(10, 100))
        registry.observe("latency", 7)
        registry.sample("depth", 100, 3)
        registry.sample("depth", 200, 5)
        snap = registry.snapshot()
        assert snap["name"] == "r"
        assert snap["counters"] == {"runs": 1}
        assert snap["histograms"]["latency"]["counts"] == [1, 1, 0]
        assert snap["timeseries"]["depth"]["samples"] == [[100, 3], [200, 5]]
        json.dumps(snap)

    def test_histogram_is_memoized_per_key(self):
        registry = MetricsRegistry("r")
        assert registry.histogram("a") is registry.histogram("a")
        assert registry.series("s") is registry.series("s")

    def test_merge_registry(self):
        left, right = MetricsRegistry("l"), MetricsRegistry("r")
        left.bump("n")
        right.bump("n", 4)
        left.observe("lat", 5, buckets=(10,))
        right.observe("lat", 50, buckets=(10,))
        right.sample("depth", 1, 1)
        left.merge_registry(right)
        assert left.as_dict()["n"] == 5
        assert left.histogram("lat", (10,)).counts == [1, 1]
        # time series are per-run trajectories: not merged
        assert "depth" not in left.snapshot()["timeseries"]

    def test_summary(self):
        registry = MetricsRegistry("r")
        assert registry.summary("missing") is None
        registry.observe("lat", 8)
        assert registry.summary("lat")["count"] == 1

"""jitverify: symbolic validation of JIT-compiled block closures.

Covers the fourth rung of the proof ladder (guest ≡ JIT-closure): the
verifier must discharge every closure the compiler emits, and — the
planted-bug contract — when a generated closure is corrupted, it must
not merely reject it but *attribute* the corruption to the right defect
class (``not-equivalent``, ``flag-mask-mismatch``,
``missing-entry-guard``, ``bad-return-count``, ``stats-mismatch``,
``missing-smc-guard``, ``unbound-name``).
"""

import pytest

from tests import blockgen
from repro.dbt.frontend import scan_block
from repro.dbt.translator import TranslationConfig
from repro.guest.assembler import assemble
from repro.guest.blockjit import compile_block, pack_space, unpack_space
from repro.guest.interpreter import GuestInterpreter
from repro.guest.memory import GuestMemory
from repro.verify.findings import VerificationError
from repro.verify.jitverify import (
    JitVerifier,
    check_chain_links,
    expected_stats,
    lint_closure_source,
)
from repro.verify.pipeline import checked_translate_program

SMOKE = (
    "_start:\n"
    "    mov eax, 5\n"
    "    add eax, ebx\n"
    "    cmp eax, 10\n"
    "    sete ecx\n"
    "    int 0x80\n"
)

STORE = (
    "_start:\n"
    "    mov [buf + 4], eax\n"
    "    add ebx, 1\n"
    "    int 0x80\n"
    ".data\n"
    "buf: dz 64\n"
)


def _block_of(source):
    program = assemble(source)
    memory = GuestMemory()
    program.load(memory)
    guest = scan_block(memory.read_bytes, program.entry)
    instrs = guest.instructions
    return instrs, program.entry, compile_block(instrs, program.entry, len(instrs))


def _refute(source_text, instrs, address, count):
    verifier = JitVerifier(context="planted")
    with pytest.raises(VerificationError) as excinfo:
        verifier.verify_closure(source_text, instrs, address, count)
    assert verifier.stats.refuted == 1
    return [finding.code for finding in excinfo.value.findings]


class TestAcceptsCompilerOutput:
    def test_smoke_block_fully_proved(self):
        instrs, address, block = _block_of(SMOKE)
        verifier = JitVerifier(context="smoke")
        assert verifier.check_block(instrs, address) is True
        assert verifier.stats.refuted == 0
        assert verifier.stats.skipped == 0
        assert verifier.stats.proved + verifier.stats.validated == 2

    def test_ineligible_block_is_silently_skipped(self):
        from tests.test_blockjit import MIDBLOCK_JUMP

        program = assemble(MIDBLOCK_JUMP)
        interp = GuestInterpreter.for_program(program)
        plan = interp._build_block_plan(program.entry, 2)
        verifier = JitVerifier(context="mid")
        assert verifier.check_block([e[1] for e in plan], program.entry) is False
        assert verifier.stats.blocks == 0

    @pytest.mark.parametrize("seed", range(30))
    def test_random_default_profile_blocks_verify(self, seed):
        source = blockgen.random_program(seed + 3000, length=10)
        instrs, address, block = _block_of(source)
        verifier = JitVerifier(context=f"seed{seed}")
        assert verifier.check_block(instrs, address) is True
        assert verifier.stats.refuted == 0


class TestPlantedBugs:
    """Corrupt the generated source six distinct ways; the verifier
    must name each defect class."""

    def test_wrong_register_value_is_not_equivalent(self):
        instrs, address, block = _block_of(SMOKE)
        bad = block.source.replace("    r0 = 5\n", "    r0 = 6\n")
        assert bad != block.source
        assert "not-equivalent" in _refute(bad, instrs, address, len(instrs))

    def test_shrunk_flag_mask_is_flag_mask_mismatch(self):
        instrs, address, block = _block_of(SMOKE)
        assert "(fl & ~2245)" in block.source
        bad = block.source.replace("(fl & ~2245)", "(fl & ~197)")
        assert "flag-mask-mismatch" in _refute(bad, instrs, address, len(instrs))

    def test_deleted_entry_guard_is_missing_entry_guard(self):
        instrs, address, block = _block_of(SMOKE)
        guard = f"    if S.eip != {address}: return -1\n"
        assert guard in block.source
        bad = block.source.replace(guard, "")
        assert "missing-entry-guard" in _refute(bad, instrs, address, len(instrs))

    def test_wrong_return_count_is_bad_return_count(self):
        instrs, address, block = _block_of(SMOKE)
        count = len(instrs)
        bad = block.source.replace(f"    return {count}\n", f"    return {count - 1}\n")
        assert bad != block.source
        assert "bad-return-count" in _refute(bad, instrs, address, count)

    def test_wrong_instruction_bump_is_stats_mismatch(self):
        instrs, address, block = _block_of(SMOKE)
        count = len(instrs)
        bad = block.source.replace(
            f"    _b('instructions', {count})\n",
            f"    _b('instructions', {count + 1})\n",
        )
        assert bad != block.source
        assert "stats-mismatch" in _refute(bad, instrs, address, count)

    def test_deleted_smc_guard_is_missing_smc_guard(self):
        instrs, address, block = _block_of(STORE)
        lines = [
            line for line in block.source.splitlines(keepends=True)
            if "NC(" not in line
        ]
        bad = "".join(lines)
        assert bad != block.source
        assert "missing-smc-guard" in _refute(bad, instrs, address, len(instrs))

    def test_undefined_name_is_unbound_name(self):
        instrs, address, block = _block_of(SMOKE)
        bad = block.source.replace("    r0 = r0 + r3", "    r0 = r0 + r9")
        if bad == block.source:  # emitter wrote the sum via a temp
            bad = block.source.replace("r0 + r3", "r0 + r9")
        assert bad != block.source
        assert "unbound-name" in _refute(bad, instrs, address, len(instrs))


class TestExpectedStats:
    def test_smoke_accounting(self):
        instrs, _, _ = _block_of(SMOKE)
        plain, cond = expected_stats(instrs)
        assert plain == {"instructions": 5, "syscalls": 1}
        assert cond == {}

    def test_memory_and_branch_accounting(self):
        source = (
            "_start:\n"
            "    mov [buf], eax\n"
            "    add ebx, [buf + 4]\n"
            "    push ecx\n"
            "    pop edx\n"
            "    jnz out\n"
            "out:\n"
            "    int 0x80\n"
            ".data\n"
            "buf: dz 64\n"
        )
        program = assemble(source)
        memory = GuestMemory()
        program.load(memory)
        guest = scan_block(memory.read_bytes, program.entry)
        plain, cond = expected_stats(guest.instructions)
        assert plain == {
            "instructions": 5, "reads": 2, "writes": 2, "branches": 1,
        }
        assert cond == {"taken_branches": 1}


class TestClosureSourceLint:
    def test_clean_closure_lints_clean(self):
        _, _, block = _block_of(STORE)
        assert lint_closure_source(block.source) == []

    def test_syntax_error_is_reported(self):
        defects = lint_closure_source("def _jit_block(I:\n")
        assert [code for code, _ in defects] == ["closure-syntax"]


class TestTranslationConfigWiring:
    def test_checked_jit_populates_equiv_stats(self):
        program = assemble(SMOKE)
        result = checked_translate_program(program, TranslationConfig(checked="jit"))
        assert result.equiv is not None
        assert result.equiv.blocks >= 1
        assert result.equiv.refuted == 0


class TestChainLinks:
    def _healthy(self):
        def fn(interp):  # pragma: no cover - never called
            return 0

        class Block:
            static_successor = 0x2000

        links = {}
        code = {(0x1000, 3): fn, (0x2000, 2): fn}
        blocks = {(0x1000, 3): Block(), (0x2000, 2): type("B", (), {"static_successor": None})()}
        links[0x2000] = [fn, 2, None, 0, None]
        links[0x1000] = [fn, 3, 0x2000, 4, None]
        return links, code, blocks, fn

    def test_healthy_table_is_clean(self):
        links, code, blocks, fn = self._healthy()
        links[0x1000][3] = 4
        links[0x1000][4] = None
        assert check_chain_links(links, code, blocks) == []

    def test_chained_healthy_link(self):
        links, code, blocks, fn = self._healthy()
        links[0x2000][2] = 0x2000  # give the successor a successor guess
        links[0x1000][4] = links[0x2000]
        assert check_chain_links(links, code, blocks) == []

    def test_stale_fn_is_flagged(self):
        links, code, blocks, fn = self._healthy()
        links[0x1000][0] = lambda interp: 0
        codes = [f.code for f in check_chain_links(links, code, blocks)]
        assert "chain-fn-mismatch" in codes

    def test_drifted_static_successor_is_flagged(self):
        links, code, blocks, fn = self._healthy()
        links[0x1000][2] = 0x3000
        codes = [f.code for f in check_chain_links(links, code, blocks)]
        assert "chain-succ-mismatch" in codes

    def test_premature_chain_is_flagged(self):
        links, code, blocks, fn = self._healthy()
        links[0x1000][3] = 2  # below the streak threshold
        links[0x1000][4] = links[0x2000]
        codes = [f.code for f in check_chain_links(links, code, blocks)]
        assert "chain-premature-link" in codes

    def test_detached_next_entry_is_flagged(self):
        links, code, blocks, fn = self._healthy()
        links[0x1000][4] = [fn, 2, None, 0, None]  # not links[0x2000]
        codes = [f.code for f in check_chain_links(links, code, blocks)]
        assert "chain-stale-link" in codes

    def test_live_vm_dispatch_table_is_clean(self):
        from repro.morph.config import PRESETS
        from repro.vm.timing import TimingVM

        from tests.test_fastpath_differential import SELF_PATCHING_LOOP

        vm = TimingVM(assemble(SELF_PATCHING_LOOP), PRESETS["speculative_4"], jit=True)
        vm.run()
        assert vm.jit_metrics["chains_linked"] >= 1
        assert vm.check_chain_invariants() == []


class TestSourceRetention:
    def test_pack_roundtrip_regenerates_source_byte_for_byte(self):
        from tests.test_blockjit import COUNTING_LOOP, _run_blocks

        program = assemble(COUNTING_LOOP)
        text = program.text
        shared = {}

        def run(space):
            interp = GuestInterpreter.for_program(assemble(COUNTING_LOOP))
            jit = interp.enable_jit(
                threshold=1, shared_space=space,
                generation=lambda: 0, share_range=(text.address, text.end),
            )
            _run_blocks(interp)
            return jit

        first = run(shared)
        originals = {
            key: block.source for key, block in first.blocks.items()
        }
        rebuilt = unpack_space(pack_space(shared))
        second = run(rebuilt)
        assert second.metrics["compiles"] == 0  # everything adopted
        for (address, count), source in originals.items():
            key = (address, count)
            if key not in second.blocks:
                continue
            assert second.blocks[key].source == "<packed>"
            regenerated = second.source_for(address, count)
            assert regenerated == source  # byte-for-byte deterministic
            # cached in place after the first regeneration
            assert second.blocks[key].source == source

    def test_source_for_unknown_block_is_none(self):
        interp = GuestInterpreter.for_program(assemble(SMOKE))
        jit = interp.enable_jit(threshold=1)
        assert jit.source_for(0xDEAD, 3) is None

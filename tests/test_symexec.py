"""Unit and property tests for the symbolic execution core.

Three layers:

* normalization units — the rewrite rules the equivalence checker
  leans on must hold and must intern equal terms to identical objects;
* metamorphic properties — every smart constructor agrees with direct
  concrete arithmetic on random operands (normalization never changes
  meaning), and the known-bits annotation is sound;
* a concrete differential — the symbolic guest evaluator agrees with
  the reference :class:`GuestInterpreter` on random straight-line
  blocks over random input vectors, with symbolic memory backed by the
  interpreter's own initial image.
"""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests import blockgen
from repro.common.bitops import MASK32, parity8, to_signed32, u32
from repro.dbt.frontend import scan_block
from repro.guest.assembler import assemble
from repro.guest.interpreter import GuestInterpreter
from repro.guest.isa import ALL_FLAGS, Op, Register
from repro.guest.memory import GuestMemory, MemoryFault
from repro.verify.symexec import expr as E
from repro.verify.symexec import guest_sem
from repro.verify.symexec.concrete import MemImage, evaluate, make_vector
from repro.verify.symexec.state import initial_state


def setup_function(function):
    E.reset()


class TestNormalization:
    def test_constant_folding_and_interning(self):
        assert E.add(E.const(2), E.const(3)) is E.const(5)
        assert E.mul(E.const(6), E.const(7)) is E.const(42)
        a = E.var("a")
        assert E.add(a, E.const(0)) is a
        assert E.band(a, E.const(0)) is E.const(0)
        assert E.bxor(a, a) is E.const(0)
        assert E.add(a, E.var("b")) is E.add(E.var("b"), a)

    def test_shift_mask_rules(self):
        a = E.var("a")
        assert E.shr(E.shl(a, E.const(8)), E.const(8)) is E.band(a, E.const(0x00FFFFFF))
        assert E.shl(a, E.const(0)) is a
        assert E.sar(E.shl(a, E.const(24)), E.const(24)) is E.sext8(a)

    def test_store_to_load_forwarding(self):
        mem, addr, value = E.memvar("mem"), E.var("p"), E.var("v")
        stored = E.store(mem, addr, value, 4)
        assert E.load(stored, addr, 4) is value
        other = E.add(addr, E.const(8))
        assert E.load(stored, other, 4) is E.load(mem, other, 4)

    def test_boolean_eq_rules(self):
        flag = E.var("zf", 1)
        assert E.eq(flag, E.const(0)) is E.bxor(flag, E.const(1))
        assert E.eq(flag, E.const(1)) is flag

    def test_ite_same_arms_collapse(self):
        c, x = E.var("c", 1), E.var("x")
        assert E.ite(c, x, x) is x
        assert E.ite(E.const(1), x, E.var("y")) is x

    def test_known_bits_on_constructors(self):
        a = E.var("a")
        assert E.band(a, E.const(0xFF)).ones == 0xFF
        assert E.shl(E.band(a, E.const(0xF)), E.const(4)).ones == 0xF0
        assert E.eq(a, E.var("b")).ones == 1


#: (name, builder, reference) for every pure 2-input operator.
_BINARY_OPS = [
    ("add", E.add, lambda x, y: (x + y) & MASK32),
    ("sub", E.sub, lambda x, y: (x - y) & MASK32),
    ("band", E.band, lambda x, y: x & y),
    ("bor", E.bor, lambda x, y: x | y),
    ("bxor", E.bxor, lambda x, y: x ^ y),
    ("shl", E.shl, lambda x, y: (x << (y & 31)) & MASK32),
    ("shr", E.shr, lambda x, y: x >> (y & 31)),
    ("sar", E.sar, lambda x, y: u32(to_signed32(x) >> (y & 31))),
    ("mul", E.mul, lambda x, y: (x * y) & MASK32),
    ("mulhu", E.mulhu, lambda x, y: (x * y) >> 32),
    ("mulhs", E.mulhs, lambda x, y: u32((to_signed32(x) * to_signed32(y)) >> 32)),
    ("ult", E.ult, lambda x, y: 1 if x < y else 0),
    ("eq", E.eq, lambda x, y: 1 if x == y else 0),
]


@settings(max_examples=200, deadline=None)
@given(
    st.integers(0, MASK32),
    st.integers(0, MASK32),
    st.sampled_from(_BINARY_OPS),
    st.booleans(),
    st.booleans(),
)
def test_constructors_match_reference_semantics(x, y, op_entry, sym_x, sym_y):
    """Normalized expressions evaluate exactly like direct arithmetic,
    whether operands arrive as constants or as bound variables."""
    E.reset()
    _, build, reference = op_entry
    env = {"x": x, "y": y}
    ex = E.var("x") if sym_x else E.const(x)
    ey = E.var("y") if sym_y else E.const(y)
    node = build(ex, ey)
    assert evaluate(node, env) == reference(x, y)
    # Known-bits soundness: the concrete value is a submask of `ones`.
    assert evaluate(node, env) & ~node.ones == 0


@settings(max_examples=100, deadline=None)
@given(st.integers(0, MASK32), st.booleans())
def test_unary_constructors_match_reference(x, symbolic):
    E.reset()
    env = {"x": x}
    ex = E.var("x") if symbolic else E.const(x)
    assert evaluate(E.bnot(ex), env) == x ^ MASK32
    assert evaluate(E.zext8(ex), env) == x & 0xFF
    assert evaluate(E.sext8(ex), env) == u32(to_signed32(u32((x & 0xFF) << 24)) >> 24)
    assert evaluate(E.parity(ex), env) == parity8(x & 0xFF)


@settings(max_examples=60, deadline=None)
@given(st.randoms(use_true_random=False), st.integers(0, MASK32))
def test_random_expression_known_bits_sound(rng, x):
    """Random operator trees keep `ones` an over-approximation."""
    E.reset()
    env = {"a": x, "b": rng.getrandbits(32), "c": rng.getrandbits(32)}
    pool = [E.var(n) for n in ("a", "b", "c")] + [E.const(rng.getrandbits(32))]
    for _ in range(20):
        name, build, _ = rng.choice(_BINARY_OPS)
        lhs, rhs = rng.choice(pool), rng.choice(pool)
        node = build(lhs, rhs)
        assert evaluate(node, env) & ~node.ones == 0, name
        pool.append(node)


class GuestImage(MemImage):
    """Symbolic-memory base image backed by a real guest memory."""

    def __init__(self, memory, overlay=None):
        super().__init__(0, overlay)
        self.memory = memory

    def read_byte(self, address):
        address &= MASK32
        got = self.overlay.get(address)
        if got is not None:
            return got
        try:
            return self.memory.read_bytes(address, 1)[0]
        except MemoryFault:
            return 0

    def written(self, address, value, width):
        overlay = dict(self.overlay)
        for i in range(width):
            overlay[(address + i) & MASK32] = (value >> (8 * i)) & 0xFF
        return GuestImage(self.memory, overlay)


_FLAG_NAMES = tuple(flag.name.lower() for flag in ALL_FLAGS)
_VECTORS = 4


def _run_guest_differential(seed):
    source = blockgen.random_program(seed, length=10)
    program = assemble(source)
    pristine = GuestMemory()
    program.load(pristine)
    guest = scan_block(lambda addr, n: pristine.read_bytes(addr, n), program.entry)

    E.reset()
    sym = guest_sem.run_block(guest, initial_state())

    steps = len(guest.instructions)
    if guest.instructions[-1].op in (Op.INT, Op.HLT):
        steps -= 1  # stop short of the syscall/halt dispatch itself

    names = [reg.name.lower() for reg in Register] + list(_FLAG_NAMES)
    ones = {name: 1 for name in _FLAG_NAMES}
    for k in range(_VECTORS):
        env = make_vector(seed * 1000 + k, names, ones)
        interp = GuestInterpreter.for_program(program)
        env["esp"] = interp.state.regs[Register.ESP]  # keep the stack mapped
        env["mem"] = GuestImage(pristine)
        for reg in Register:
            interp.state.regs[reg] = env[reg.name.lower()]
        interp.state.flags = 0
        for flag in ALL_FLAGS:
            interp.state.flags |= env[flag.name.lower()] << int(flag)

        for _ in range(steps):
            interp.step()

        for reg in Register:
            want = evaluate(sym.regs[int(reg)], env)
            got = interp.state.regs[reg]
            assert got == want, (
                f"seed {seed} vector {k}: {reg.name} {got:#x} != {want:#x}\n{source}"
            )
        for flag in ALL_FLAGS:
            want = evaluate(sym.flags[flag], env)
            got = (interp.state.flags >> int(flag)) & 1
            assert got == want, f"seed {seed} vector {k}: {flag.name} {got} != {want}\n{source}"
        if steps == len(guest.instructions):  # block ended in a branch we stepped
            want_pc = evaluate(sym.next_pc, env)
            assert interp.state.eip == want_pc, f"seed {seed} vector {k}: eip\n{source}"
        final = evaluate(sym.mem, env)
        for address in final.overlay:
            assert interp.memory.read_bytes(address, 1)[0] == final.read_byte(address), (
                f"seed {seed} vector {k}: memory at {address:#x}\n{source}"
            )


@pytest.mark.parametrize("seed", range(12))
def test_guest_sem_matches_interpreter(seed):
    _run_guest_differential(seed)

"""Unit tests for repro.common.lru, stats and prng."""

import pytest

from repro.common.lru import LruDict, SetAssociativeIndex
from repro.common.prng import DeterministicPrng
from repro.common.stats import Counter, RunningMean, StatSet


class TestLruDict:
    def test_basic_put_get(self):
        lru = LruDict(2)
        assert lru.put("a", 1) is None
        assert lru.get("a") == 1
        assert lru.get("missing") is None

    def test_eviction_order(self):
        lru = LruDict(2)
        lru.put("a", 1)
        lru.put("b", 2)
        evicted = lru.put("c", 3)
        assert evicted == ("a", 1)
        assert "a" not in lru

    def test_get_refreshes_recency(self):
        lru = LruDict(2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.get("a")
        evicted = lru.put("c", 3)
        assert evicted == ("b", 2)

    def test_peek_does_not_refresh(self):
        lru = LruDict(2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.peek("a")
        evicted = lru.put("c", 3)
        assert evicted == ("a", 1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            LruDict(0)


class TestSetAssociativeIndex:
    def test_hit_after_fill(self):
        cache = SetAssociativeIndex(size_bytes=1024, line_bytes=32, ways=2)
        assert not cache.lookup(0x100)
        cache.fill(0x100)
        assert cache.lookup(0x100)
        assert cache.lookup(0x11F)  # same line
        assert not cache.lookup(0x120)  # next line

    def test_way_conflict_eviction(self):
        cache = SetAssociativeIndex(size_bytes=256, line_bytes=32, ways=2)
        # 4 sets; addresses 0x000, 0x100, 0x200 map to set 0
        cache.fill(0x000)
        cache.fill(0x100)
        cache.fill(0x200)
        assert not cache.lookup(0x000)
        assert cache.lookup(0x100)
        assert cache.lookup(0x200)

    def test_dirty_writeback_address(self):
        cache = SetAssociativeIndex(size_bytes=256, line_bytes=32, ways=1)
        cache.fill(0x40, dirty=True)
        victim = cache.fill(0x140)  # evicts line 0x40
        assert victim == 0x40

    def test_clean_eviction_returns_none(self):
        cache = SetAssociativeIndex(size_bytes=256, line_bytes=32, ways=1)
        cache.fill(0x40, dirty=False)
        assert cache.fill(0x140) is None

    def test_flush_counts_dirty(self):
        cache = SetAssociativeIndex(size_bytes=256, line_bytes=32, ways=2)
        cache.fill(0x00, dirty=True)
        cache.fill(0x20, dirty=False)
        cache.mark_dirty(0x20)
        assert cache.flush() == 2
        assert cache.resident_lines() == 0

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeIndex(size_bytes=1000, line_bytes=32, ways=2)


class TestStats:
    def test_counter_increments(self):
        counter = Counter("x")
        counter.add()
        counter.add(5)
        assert counter.value == 6

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").add(-1)

    def test_statset_bump_and_ratio(self):
        stats = StatSet("test")
        stats.bump("hits", 3)
        stats.bump("accesses", 4)
        assert stats["hits"] == 3
        assert stats.ratio("hits", "accesses") == 0.75
        assert stats.ratio("hits", "never") == 0.0

    def test_statset_merge(self):
        a = StatSet("a")
        a.bump("x", 1)
        b = StatSet("b")
        b.bump("x", 2)
        b.bump("y", 3)
        a.merge(b.as_dict())
        assert a["x"] == 3
        assert a["y"] == 3

    def test_running_mean(self):
        mean = RunningMean()
        assert mean.mean == 0.0
        mean.observe(2.0)
        mean.observe(4.0)
        assert mean.mean == 3.0
        assert mean.minimum == 2.0
        assert mean.maximum == 4.0


class TestPrng:
    def test_determinism(self):
        a = DeterministicPrng(42)
        b = DeterministicPrng(42)
        assert [a.next_u32() for _ in range(10)] == [b.next_u32() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = DeterministicPrng(1)
        b = DeterministicPrng(2)
        assert [a.next_u32() for _ in range(4)] != [b.next_u32() for _ in range(4)]

    def test_below_bound(self):
        prng = DeterministicPrng(7)
        for _ in range(100):
            assert 0 <= prng.below(13) < 13
        with pytest.raises(ValueError):
            prng.below(0)

    def test_in_range(self):
        prng = DeterministicPrng(7)
        for _ in range(100):
            assert 10 <= prng.in_range(10, 20) < 20

    def test_shuffled_is_permutation(self):
        prng = DeterministicPrng(3)
        items = list(range(50))
        shuffled = prng.shuffled(items)
        assert sorted(shuffled) == items
        assert items == list(range(50))  # original untouched

    def test_choice_and_bytes(self):
        prng = DeterministicPrng(9)
        assert prng.choice([5]) == 5
        assert len(prng.bytes(10)) == 10
        with pytest.raises(ValueError):
            prng.choice([])

    def test_zero_seed_is_valid(self):
        prng = DeterministicPrng(0)
        assert prng.next_u32() != 0

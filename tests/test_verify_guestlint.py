"""Guest-binary lint: CFG recovery and each finding class."""

from repro.guest.assembler import assemble
from repro.verify.findings import Severity
from repro.verify.guestlint import lint_bytes, lint_program


def codes(report):
    return {f.code for f in report.findings}


def finding(report, code):
    return next(f for f in report.findings if f.code == code)


class TestCleanPrograms:
    def test_straight_line(self):
        report = lint_program(assemble("_start: mov eax, 1\nadd eax, 2\nhlt\n"))
        assert report.findings == []
        assert report.reachable_instructions == 3
        assert report.reachable_bytes == report.text_bytes

    def test_balanced_call_and_flags(self):
        report = lint_program(assemble(
            "_start: call fn\nhlt\n"
            "fn: cmp eax, 5\njl neg\nret\n"
            "neg: mov eax, 0\nret\n"
        ))
        assert report.findings == []

    def test_loop(self):
        report = lint_program(assemble(
            "_start: mov ecx, 10\nloop_top: dec ecx\njnz loop_top\nhlt\n"
        ))
        assert report.findings == []


class TestFindings:
    def test_unreachable_code(self):
        report = lint_program(assemble(
            "_start: hlt\ndead: add eax, ebx\nmov eax, 0\nret\n"
        ))
        bad = finding(report, "unreachable-code")
        assert bad.severity is Severity.WARNING
        assert "dead" in bad.message  # attributed to the enclosing symbol
        assert report.reachable_bytes < report.text_bytes

    def test_jump_into_mid_instruction(self):
        # mov eax, imm32 (5 bytes) then jmp back into its immediate field.
        code = bytes([0xB8, 0x90, 0x90, 0x90, 0x90, 0xEB, 0xFA])
        report = lint_bytes(code)
        bad = finding(report, "jump-into-instruction")
        assert bad.severity is Severity.ERROR

    def test_ret_underflow(self):
        report = lint_program(assemble("_start: ret\n"))
        bad = finding(report, "ret-underflow")
        assert bad.severity is Severity.ERROR

    def test_ret_after_call_is_balanced(self):
        report = lint_program(assemble("_start: call fn\nhlt\nfn: ret\n"))
        assert "ret-underflow" not in codes(report)

    def test_undefined_flag_read(self):
        report = lint_program(assemble("_start: jz out\nout: hlt\n"))
        bad = finding(report, "undefined-flag-read")
        assert bad.severity is Severity.WARNING

    def test_flag_defined_on_one_path_only_is_ok(self):
        # May-defined analysis: a flag defined on *some* path is not
        # reported (the lint is a linter, not a sound verifier).
        report = lint_program(assemble(
            "_start: cmp eax, ebx\njz skip\nskip: jz out\nout: hlt\n"
        ))
        assert "undefined-flag-read" not in codes(report)

    def test_exit_inside_call(self):
        report = lint_program(assemble("_start: call fn\nhlt\nfn: hlt\n"))
        bad = finding(report, "exit-inside-call")
        assert bad.severity is Severity.INFO

    def test_illegal_instruction_reachable(self):
        # 0xFE is not a VX86 opcode.
        report = lint_bytes(bytes([0xFE]))
        bad = finding(report, "illegal-instruction")
        assert bad.severity is Severity.ERROR

    def test_control_flow_leaves_text(self):
        # jmp rel8 far past the end of the image
        report = lint_bytes(bytes([0xEB, 0x40]))
        assert "illegal-instruction" in codes(report)


class TestTotality:
    def test_empty_image(self):
        report = lint_bytes(b"")
        assert report.reachable_instructions == 0

    def test_all_byte_values(self):
        for value in range(256):
            lint_bytes(bytes([value]) * 7)

    def test_truncated_instruction(self):
        # mov eax, imm32 with the immediate cut off
        report = lint_bytes(bytes([0xB8, 0x01]))
        assert "illegal-instruction" in codes(report)

    def test_max_instructions_cap(self):
        # A long nop sled respects the decode budget.
        report = lint_bytes(bytes([0x90]) * 100, max_instructions=10)
        assert report.reachable_instructions == 10


class TestWorkloadsAreClean:
    def test_gzip_has_no_errors(self):
        from repro.workloads.suite import build_workload

        report = lint_program(build_workload("164.gzip", scale=0.1))
        assert report.errors == []
        # The farm's indirect-call-only functions show up as warnings,
        # never as errors.
        for bad in report.findings:
            assert bad.severity < Severity.ERROR

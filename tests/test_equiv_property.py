"""Property: every random straight-line block translates equivalently.

Hypothesis drives :mod:`tests.blockgen` through a shrinkable PRNG and
asserts the full checked pipeline (frontend ≡ IR, every optimizer
pass, codegen, scheduler) discharges with zero refutations.  When a
counterexample is found, its (shrunk) source is persisted under
``tests/data/`` so it becomes a permanent regression: the replay test
below re-checks every persisted program on every run.
"""

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests import blockgen
from repro.dbt.translator import TranslationConfig
from repro.guest.assembler import assemble
from repro.verify.findings import VerificationError
from repro.verify.pipeline import checked_translate_program

DATA_DIR = Path(__file__).parent / "data"
#: Written (and overwritten, ending with the shrunk minimum) whenever
#: the property below fails; rename to ``equiv_regression_<what>.asm``
#: when committing one as a permanent regression.
COUNTEREXAMPLE = DATA_DIR / "equiv_counterexample_latest.asm"

_CONFIG = TranslationConfig(checked="equiv", equiv_vectors=4)


def _check_source(source):
    program = assemble(source)
    result = checked_translate_program(program, _CONFIG)
    assert not result.faults, "generated program must decode statically"
    assert result.equiv is not None
    assert result.equiv.refuted == 0
    return result


@settings(max_examples=25, deadline=None)
@given(st.randoms(use_true_random=False), st.integers(2, 14))
def test_random_blocks_translate_equivalently(rng, length):
    body = blockgen.random_block_lines(rng, length)
    terminator = rng.choice((None, *blockgen.JCC))
    source = blockgen.render_program(body, terminator)
    try:
        _check_source(source)
    except (VerificationError, AssertionError):
        COUNTEREXAMPLE.write_text(source)
        raise


def _regressions():
    return sorted(DATA_DIR.glob("equiv_regression_*.asm"))


@pytest.mark.parametrize(
    "path", _regressions() or [None], ids=lambda p: p.name if p else "none"
)
def test_persisted_counterexamples_stay_fixed(path):
    if path is None:
        pytest.skip("no persisted equivalence regressions")
    _check_source(path.read_text())

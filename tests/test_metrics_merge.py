"""Order-independence of the cross-process telemetry merges.

Worker processes finish in nondeterministic order, so ``run_many``'s
aggregate telemetry is only deterministic if folding worker snapshots
is a commutative, associative operation *down to the bit*.  These
hypothesis properties pin that: any permutation of the same snapshots
merges to an identical result (integers add exactly; float totals go
through ``math.fsum``, which returns the correctly rounded true sum
regardless of order)."""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    IO_TIME_BUCKETS,
    MetricsRegistry,
    merge_histogram_dicts,
    merge_registry_snapshots,
    merge_track_dicts,
)
from repro.obs.prof import merge_profiles

# finite, fsum-safe sample values (no overflow, no NaN collapse)
_values = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
)

_counter_names = st.sampled_from(
    ["diskcache.hits", "diskcache.misses", "jitpack.saves", "blocks"]
)
_hist_names = st.sampled_from(["load.us", "store.us", "jitpack.pack.us"])


def _registry_snapshot(counters, observations):
    registry = MetricsRegistry("worker")
    for name, amount in counters:
        registry.bump(name, amount)
    for name, value in observations:
        registry.observe(name, value, IO_TIME_BUCKETS)
    return registry.snapshot()


_snapshots = st.lists(
    st.builds(
        _registry_snapshot,
        st.lists(st.tuples(_counter_names, st.integers(0, 10_000)), max_size=6),
        st.lists(st.tuples(_hist_names, _values), max_size=8),
    ),
    min_size=1,
    max_size=6,
)


def _shuffled(items, seed):
    out = list(items)
    random.Random(seed).shuffle(out)
    return out


def _canon(obj):
    """Bit-exact comparison form (floats keep their exact repr)."""
    return json.dumps(obj, sort_keys=True)


class TestRegistryMerge:
    @settings(max_examples=60, deadline=None)
    @given(snaps=_snapshots, seed=st.integers(0, 2**32 - 1))
    def test_merge_is_permutation_invariant(self, snaps, seed):
        merged = merge_registry_snapshots(snaps)
        reshuffled = merge_registry_snapshots(_shuffled(snaps, seed))
        assert _canon(merged) == _canon(reshuffled)

    @settings(max_examples=30, deadline=None)
    @given(snaps=_snapshots)
    def test_counter_totals_are_exact_sums(self, snaps):
        merged = merge_registry_snapshots(snaps)
        for name in merged["counters"]:
            expected = sum(s["counters"].get(name, 0) for s in snaps)
            assert merged["counters"][name] == expected

    @settings(max_examples=30, deadline=None)
    @given(snaps=_snapshots)
    def test_timeseries_dropped_not_merged(self, snaps):
        assert merge_registry_snapshots(snaps)["timeseries"] == {}

    def test_merge_names_the_aggregate(self):
        merged = merge_registry_snapshots([], name="pool")
        assert merged["name"] == "pool"
        assert merged["counters"] == {}


class TestTrackAndHistogramMerge:
    @settings(max_examples=60, deadline=None)
    @given(
        samples=st.lists(st.lists(_values, max_size=8), min_size=1, max_size=6),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_track_merge_permutation_invariant(self, samples, seed):
        tracks = []
        for worker_samples in samples:
            registry = MetricsRegistry("w")
            registry.histogram("t.us", IO_TIME_BUCKETS)  # exists even if idle
            for value in worker_samples:
                registry.observe("t.us", value, IO_TIME_BUCKETS)
            tracks.append(registry.snapshot()["histograms"]["t.us"])
        merged = merge_track_dicts(tracks)
        reshuffled = merge_track_dicts(_shuffled(tracks, seed))
        assert _canon(merged) == _canon(reshuffled)
        assert merged["count"] == sum(len(s) for s in samples)

    def test_histogram_merge_rejects_mismatched_buckets(self):
        a = MetricsRegistry("a")
        a.observe("x", 1.0, (10, 100))
        b = MetricsRegistry("b")
        b.observe("x", 1.0, (10, 100, 1000))
        with pytest.raises(ValueError):
            merge_histogram_dicts(
                [
                    a.snapshot()["histograms"]["x"],
                    b.snapshot()["histograms"]["x"],
                ]
            )

    def test_histogram_merge_requires_input(self):
        with pytest.raises(ValueError):
            merge_histogram_dicts([])


_profile_paths = st.sampled_from(
    ["run", "run;interpreter", "run;interpreter;memsys",
     "run;jit.run", "run;interpreter;jit.compile", "cache.io"]
)

_profiles = st.lists(
    st.dictionaries(
        _profile_paths,
        st.fixed_dictionaries(
            {"ns": st.integers(0, 10**12), "calls": st.integers(1, 10**6)}
        ),
        max_size=6,
    ).map(lambda paths: {"clock": "perf_counter_ns", "paths": paths}),
    min_size=1,
    max_size=6,
)


class TestProfileMerge:
    @settings(max_examples=60, deadline=None)
    @given(profiles=_profiles, seed=st.integers(0, 2**32 - 1))
    def test_profile_merge_permutation_invariant(self, profiles, seed):
        merged = merge_profiles(profiles)
        reshuffled = merge_profiles(_shuffled(profiles, seed))
        assert merged == reshuffled
        assert _canon(merged) == _canon(reshuffled)

    @settings(max_examples=30, deadline=None)
    @given(profiles=_profiles)
    def test_profile_merge_sums_exactly(self, profiles):
        merged = merge_profiles(profiles)
        for path, entry in merged["paths"].items():
            assert entry["ns"] == sum(
                p["paths"].get(path, {}).get("ns", 0) for p in profiles
            )
            assert entry["calls"] == sum(
                p["paths"].get(path, {}).get("calls", 0) for p in profiles
            )

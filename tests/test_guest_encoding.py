"""Encoder/decoder roundtrip tests for the VX86 guest ISA."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.guest.decoder import DecodeError, decode_instruction
from repro.guest.encoder import EncodeError, encode_instruction
from repro.guest.isa import (
    ALU_GROUP,
    ConditionCode,
    Immediate,
    Instruction,
    MemoryOperand,
    Op,
    Register,
    RegisterOperand,
)

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

registers = st.sampled_from(list(Register))
reg_operands = st.builds(RegisterOperand, registers)
imm32 = st.integers(min_value=-(2**31), max_value=2**31 - 1)

mem_operands = st.builds(
    MemoryOperand,
    base=st.one_of(st.none(), registers),
    index=st.one_of(st.none(), st.sampled_from([r for r in Register if r is not Register.ESP])),
    scale=st.sampled_from([1, 2, 4, 8]),
    disp=imm32,
)

rm_operands = st.one_of(reg_operands, mem_operands)


def roundtrip(instr: Instruction) -> Instruction:
    encoded = encode_instruction(instr)
    decoded = decode_instruction(encoded, 0, instr.address)
    assert decoded.length == len(encoded)
    return decoded


# ---------------------------------------------------------------------------
# property tests
# ---------------------------------------------------------------------------


class TestAluRoundtrip:
    @given(
        op=st.sampled_from(list(ALU_GROUP)),
        dst=rm_operands,
        src=reg_operands,
        width=st.sampled_from([8, 32]),
    )
    def test_rm_reg_forms(self, op, dst, src, width):
        instr = Instruction(op, width=width, dst=dst, src=src)
        decoded = roundtrip(instr)
        assert decoded.op is op
        assert decoded.width == width
        assert decoded.dst == dst
        assert decoded.src == src

    @given(op=st.sampled_from(list(ALU_GROUP)), dst=reg_operands, src=mem_operands)
    def test_reg_mem_forms(self, op, dst, src):
        decoded = roundtrip(Instruction(op, dst=dst, src=src))
        assert (decoded.op, decoded.dst, decoded.src) == (op, dst, src)

    @given(op=st.sampled_from(list(ALU_GROUP)), dst=rm_operands, value=imm32)
    def test_imm_forms(self, op, dst, value):
        decoded = roundtrip(Instruction(op, dst=dst, src=Immediate(value)))
        assert decoded.op is op
        assert decoded.dst == dst
        assert decoded.src == Immediate(value)

    @given(
        op=st.sampled_from(list(ALU_GROUP)),
        dst=rm_operands,
        value=st.integers(min_value=0, max_value=255),
    )
    def test_byte_imm_forms(self, op, dst, value):
        decoded = roundtrip(Instruction(op, width=8, dst=dst, src=Immediate(value)))
        assert decoded.width == 8
        assert decoded.src == Immediate(value)


class TestOtherRoundtrips:
    @given(
        op=st.sampled_from([Op.SHL, Op.SHR, Op.SAR]),
        dst=rm_operands,
        count=st.integers(min_value=0, max_value=31),
    )
    def test_shift_imm(self, op, dst, count):
        decoded = roundtrip(Instruction(op, dst=dst, src=Immediate(count)))
        assert (decoded.op, decoded.dst, decoded.src) == (op, dst, Immediate(count))

    @given(op=st.sampled_from([Op.SHL, Op.SHR, Op.SAR]), dst=rm_operands)
    def test_shift_cl(self, op, dst):
        instr = Instruction(op, dst=dst, src=RegisterOperand(Register.ECX))
        decoded = roundtrip(instr)
        assert decoded.src == RegisterOperand(Register.ECX)

    @given(op=st.sampled_from([Op.INC, Op.DEC, Op.NEG, Op.NOT]), dst=rm_operands)
    def test_one_operand(self, op, dst):
        decoded = roundtrip(Instruction(op, dst=dst))
        assert (decoded.op, decoded.dst) == (op, dst)

    @given(dst=reg_operands, src=rm_operands)
    def test_imul(self, dst, src):
        decoded = roundtrip(Instruction(Op.IMUL, dst=dst, src=src))
        assert (decoded.op, decoded.dst, decoded.src) == (Op.IMUL, dst, src)

    @given(op=st.sampled_from([Op.MUL, Op.DIV, Op.IDIV]), src=rm_operands)
    def test_muldiv(self, op, src):
        decoded = roundtrip(Instruction(op, src=src))
        assert (decoded.op, decoded.src) == (op, src)

    @given(dst=reg_operands, src=mem_operands)
    def test_lea(self, dst, src):
        decoded = roundtrip(Instruction(Op.LEA, dst=dst, src=src))
        assert (decoded.op, decoded.dst, decoded.src) == (Op.LEA, dst, src)

    @given(op=st.sampled_from([Op.MOVZX, Op.MOVSX]), dst=reg_operands, src=rm_operands)
    def test_movzx_movsx(self, op, dst, src):
        decoded = roundtrip(Instruction(op, dst=dst, src=src))
        assert (decoded.op, decoded.dst, decoded.src) == (op, dst, src)

    @given(dst=st.one_of(reg_operands, mem_operands, st.builds(Immediate, imm32)))
    def test_push(self, dst):
        decoded = roundtrip(Instruction(Op.PUSH, dst=dst))
        assert (decoded.op, decoded.dst) == (Op.PUSH, dst)

    @given(dst=rm_operands)
    def test_pop(self, dst):
        decoded = roundtrip(Instruction(Op.POP, dst=dst))
        assert (decoded.op, decoded.dst) == (Op.POP, dst)

    @given(cc=st.sampled_from(list(ConditionCode)), dst=rm_operands)
    def test_setcc(self, cc, dst):
        decoded = roundtrip(Instruction(Op.SETCC, width=8, dst=dst, cc=cc))
        assert (decoded.op, decoded.cc, decoded.dst) == (Op.SETCC, cc, dst)


class TestBranchRoundtrip:
    @given(
        cc=st.sampled_from(list(ConditionCode)),
        address=st.integers(min_value=0x1000, max_value=0x0FFFFFFF),
        offset=st.integers(min_value=-(2**20), max_value=2**20),
    )
    def test_jcc(self, cc, address, offset):
        target = (address + offset) & 0xFFFFFFFF
        instr = Instruction(Op.JCC, cc=cc, target=target, address=address)
        encoded = encode_instruction(instr)
        decoded = decode_instruction(encoded, 0, address)
        assert decoded.op is Op.JCC
        assert decoded.cc is cc
        assert decoded.target == target

    @given(
        op=st.sampled_from([Op.JMP, Op.CALL]),
        address=st.integers(min_value=0x1000, max_value=0x0FFFFFFF),
        offset=st.integers(min_value=-(2**20), max_value=2**20),
    )
    def test_direct_jmp_call(self, op, address, offset):
        target = (address + offset) & 0xFFFFFFFF
        encoded = encode_instruction(Instruction(op, target=target, address=address))
        decoded = decode_instruction(encoded, 0, address)
        assert decoded.op is op
        assert decoded.target == target

    @given(op=st.sampled_from([Op.JMP, Op.CALL]), dst=rm_operands)
    def test_indirect_jmp_call(self, op, dst):
        decoded = roundtrip(Instruction(op, dst=dst))
        assert decoded.op is op
        assert decoded.dst == dst
        assert decoded.target is None
        assert decoded.is_indirect_branch

    def test_short_branch_used_when_possible(self):
        instr = Instruction(Op.JMP, target=0x1010, address=0x1000)
        assert len(encode_instruction(instr, allow_short=True)) == 2
        assert len(encode_instruction(instr, allow_short=False)) == 5

    def test_short_jcc_used_when_possible(self):
        instr = Instruction(Op.JCC, cc=ConditionCode.E, target=0x1010, address=0x1000)
        assert len(encode_instruction(instr, allow_short=True)) == 2
        assert len(encode_instruction(instr, allow_short=False)) == 6


class TestMiscEncoding:
    def test_ret_forms(self):
        assert encode_instruction(Instruction(Op.RET)) == b"\xc3"
        decoded = roundtrip(Instruction(Op.RET, imm=8))
        assert decoded.imm == 8

    def test_int_vector(self):
        decoded = roundtrip(Instruction(Op.INT, imm=0x80))
        assert decoded.imm == 0x80

    def test_simple_ops(self):
        for op in (Op.NOP, Op.HLT, Op.CDQ):
            assert roundtrip(Instruction(op)).op is op

    def test_mov_reg_imm_legacy_form(self):
        # 0xB8+r encoding must still decode even though the encoder
        # prefers the ALU immediate form.
        encoded = bytes([0xB8]) + (0x1234).to_bytes(4, "little")
        decoded = decode_instruction(encoded, 0, 0)
        assert decoded.op is Op.MOV
        assert decoded.dst == RegisterOperand(Register.EAX)
        assert decoded.src == Immediate(0x1234)

    def test_decode_error_on_bad_opcode(self):
        with pytest.raises(DecodeError):
            decode_instruction(b"\xfe", 0, 0x100)

    def test_decode_error_on_truncation(self):
        encoded = encode_instruction(
            Instruction(Op.ADD, dst=RegisterOperand(Register.EAX), src=Immediate(100000))
        )
        with pytest.raises(DecodeError):
            decode_instruction(encoded[:-1], 0, 0)

    def test_encode_error_on_bad_shift_count(self):
        with pytest.raises(EncodeError):
            encode_instruction(
                Instruction(Op.SHL, dst=RegisterOperand(Register.EAX), src=Immediate(99))
            )

    def test_variable_lengths_span_expected_range(self):
        short = encode_instruction(Instruction(Op.NOP))
        long = encode_instruction(
            Instruction(
                Op.ADD,
                dst=MemoryOperand(Register.EBP, Register.ECX, 4, 0x12345678),
                src=Immediate(0x1000),
            )
        )
        assert len(short) == 1
        assert len(long) >= 7

"""Block JIT: compiled closures must be indistinguishable from the
interpreter.

The contract (see ``repro.guest.blockjit``): for any block the compiler
accepts, executing the closure leaves *identical* architectural state,
memory, stats counters and fault behaviour to interpreting the same
instructions.  These tests drive that contract with the same seeded
random block generator the symbolic-equivalence layer uses, plus
targeted unit tests for the engine (thresholds, shared-space adoption,
code packs, self-modifying-code invalidation).
"""

import pytest

from tests import blockgen
from repro.dbt.frontend import scan_block
from repro.guest.assembler import assemble
from repro.guest.blockjit import (
    DEFAULT_HOT_THRESHOLD,
    Ineligible,
    compile_block,
    jit_enabled_by_env,
    pack_space,
    unpack_space,
)
from repro.guest.flags import condition_expr, evaluate_condition
from repro.guest.interpreter import GuestInterpreter
from repro.guest.isa import ALL_FLAGS, ConditionCode, Op, Register
from repro.verify.symexec.concrete import make_vector

_FLAG_NAMES = tuple(flag.name.lower() for flag in ALL_FLAGS)


def _seeded(program, env):
    interp = GuestInterpreter.for_program(program)
    for reg in Register:
        if reg is not Register.ESP:
            interp.state.regs[reg] = env[reg.name.lower()]
    interp.state.flags = 0
    for flag in ALL_FLAGS:
        interp.state.flags |= env[flag.name.lower()] << int(flag)
    return interp


def _run_blocks(interp):
    """Drive the interpreter block-at-a-time, like the VM dispatch loop.

    ``GuestInterpreter.run`` steps one instruction at a time and never
    consults the JIT; this is the harness that exercises
    ``run_block_at`` (and through it ``BlockJit.note_execution``).
    """
    read = interp.memory.read_bytes
    for _ in range(200_000):
        if interp.exit_code is not None:
            return interp.exit_code
        pc = interp.state.eip
        block = scan_block(read, pc)
        interp.run_block_at(pc, len(block.instructions))
    raise AssertionError("runaway block loop")


def _body_steps(program):
    from repro.guest.memory import GuestMemory

    memory = GuestMemory()
    program.load(memory)
    guest = scan_block(memory.read_bytes, program.entry)
    steps = len(guest.instructions)
    if guest.instructions[-1].op in (Op.INT, Op.HLT):
        steps -= 1
    return steps


class TestConditionExprs:
    def test_expr_agrees_with_evaluate_condition_exhaustively(self):
        # every condition code x every combination of the five flags
        for cc in ConditionCode:
            expr = condition_expr(cc)
            for bits in range(32):
                fl = 0
                for index, flag in enumerate(ALL_FLAGS):
                    if bits >> index & 1:
                        fl |= 1 << int(flag)
                got = bool(eval(expr, {"fl": fl}))
                want = evaluate_condition(cc, fl)
                assert got == want, f"{cc.name} flags={fl:#06x}"


class TestCompiledBlockDifferential:
    @pytest.mark.parametrize("seed", range(20))
    def test_compiled_blocks_match_interpreter(self, seed):
        source = blockgen.random_program(seed + 900, length=10)
        program = assemble(source)
        steps = _body_steps(program)
        if steps == 0:
            pytest.skip("degenerate block")
        buf = program.symbols["buf"]
        names = [reg.name.lower() for reg in Register] + list(_FLAG_NAMES)
        ones = {name: 1 for name in _FLAG_NAMES}
        for k in range(3):
            env = make_vector(seed * 131 + k, names, ones)
            reference = _seeded(program, env)
            jitted = _seeded(program, env)
            jit = jitted.enable_jit(threshold=1)

            ref_count = reference.run_block_at(program.entry, steps)
            jit_count = jitted.run_block_at(program.entry, steps)

            assert jit_count == ref_count
            assert jitted.state.snapshot() == reference.state.snapshot(), (
                f"seed {seed} vector {k} diverged\n{source}"
            )
            assert jitted.memory.read_bytes(buf, blockgen.BUF_BYTES) == (
                reference.memory.read_bytes(buf, blockgen.BUF_BYTES)
            ), f"seed {seed} vector {k}: buffer diverged\n{source}"
            assert jitted.stats.as_dict() == reference.stats.as_dict(), (
                f"seed {seed} vector {k}: stats diverged\n{source}"
            )
            # at threshold 1 the block either compiled or was ineligible
            # (in which case the legacy path ran: still exact above)
            assert jit.metrics["compiles"] + jit.metrics["ineligible"] >= 1


MIDBLOCK_JUMP = """
_start:
    jmp next
next:
    mov eax, 1
    mov ebx, 0
    int 0x80
"""


class TestEligibility:
    def test_setcc_compiles(self):
        program = assemble("_start:\n    cmp eax, 5\n    sete ebx\n    int 0x80\n")
        interp = GuestInterpreter.for_program(program)
        plan = interp._build_block_plan(program.entry, 2)
        block = compile_block([entry[1] for entry in plan], program.entry, 2)
        assert block.fn is not None

    def test_midblock_control_flow_is_rejected(self):
        # a plan that spans past a jmp cannot compile: either the plan
        # is truncated at the terminator or control flow appears before
        # the last instruction — both are Ineligible
        program = assemble(MIDBLOCK_JUMP)
        interp = GuestInterpreter.for_program(program)
        plan = interp._build_block_plan(program.entry, 2)
        with pytest.raises(Ineligible):
            compile_block([entry[1] for entry in plan], program.entry, 2)


COUNTING_LOOP = """
_start:
    mov ecx, 50
loop:
    add ebx, ecx
    sub ecx, 1
    jnz loop
    mov eax, 1
    and ebx, 255
    int 0x80
"""


class TestEngine:
    def test_threshold_gates_fresh_compiles(self):
        interp = GuestInterpreter.for_program(assemble(COUNTING_LOOP))
        jit = interp.enable_jit(threshold=3)
        reference = GuestInterpreter.for_program(assemble(COUNTING_LOOP))
        assert _run_blocks(interp) == reference.run()
        # only the loop body (3 instructions, 50 executions) got hot;
        # the entry and exit blocks ran once each and stayed cold
        assert jit.metrics["compiles"] == 1
        assert list(jit.code) == [(list(jit.code)[0][0], 3)]

    def test_env_default_threshold(self, monkeypatch):
        monkeypatch.delenv("REPRO_JIT_THRESHOLD", raising=False)
        program = assemble(COUNTING_LOOP)
        jit = GuestInterpreter.for_program(program).enable_jit()
        assert jit.threshold == DEFAULT_HOT_THRESHOLD
        monkeypatch.setenv("REPRO_JIT_THRESHOLD", "7")
        jit = GuestInterpreter.for_program(program).enable_jit()
        assert jit.threshold == 7

    def test_env_enable_flag(self, monkeypatch):
        monkeypatch.delenv("REPRO_JIT", raising=False)
        assert jit_enabled_by_env() is True
        monkeypatch.setenv("REPRO_JIT", "0")
        assert jit_enabled_by_env() is False
        monkeypatch.setenv("REPRO_JIT", "off")
        assert jit_enabled_by_env() is False

    def test_invalidate_clears_in_place_and_bumps_epoch(self):
        interp = GuestInterpreter.for_program(assemble(COUNTING_LOOP))
        jit = interp.enable_jit(threshold=1)
        _run_blocks(interp)
        code_dict = interp._jit_code
        assert code_dict, "nothing compiled"
        fired = []
        jit.on_invalidate = lambda: fired.append(True)
        epoch_before = jit.epoch
        jit.invalidate()
        # cleared IN PLACE: run_block_at and the VM loop alias the dict
        assert interp._jit_code is code_dict and not code_dict
        assert jit.epoch == epoch_before + 1
        assert fired == [True]
        assert jit.metrics["invalidations"] == 1

    def test_counts_survive_invalidation(self):
        interp = GuestInterpreter.for_program(assemble(COUNTING_LOOP))
        jit = interp.enable_jit(threshold=2)
        _run_blocks(interp)
        compiled = [key for key in jit.code]
        jit.invalidate()
        # hot counts persisted: the very next sighting of a previously
        # hot block recompiles without re-warming from zero
        assert jit.note_execution(*compiled[0]) is not None
        assert jit.metrics["compiles"] == len(compiled) + 1


class TestSharedSpace:
    def _run(self, shared):
        program = assemble(COUNTING_LOOP)
        text = program.text
        interp = GuestInterpreter.for_program(program)
        jit = interp.enable_jit(
            shared_space=shared,
            generation=lambda: 0,
            share_range=(text.address, text.end),
        )
        exit_code = _run_blocks(interp)
        return exit_code, jit

    def test_adoption_on_first_sighting(self):
        shared = {}
        first_exit, first = self._run(shared)
        assert first.metrics["compiles"] == 1
        assert len(shared) == 1, "hot block not published to the shared space"
        second_exit, second = self._run(shared)
        assert second_exit == first_exit
        # the sibling's compile is adopted on the block's FIRST
        # sighting — the threshold gates fresh compiles, not adoption
        assert second.metrics["shared_hits"] == 1
        assert second.metrics["compiles"] == 0

    def test_ineligible_marker_is_shared(self):
        program = assemble(MIDBLOCK_JUMP)
        text = program.text
        shared = {}

        def engine():
            interp = GuestInterpreter.for_program(program)
            return interp.enable_jit(
                threshold=1, shared_space=shared,
                generation=lambda: 0, share_range=(text.address, text.end),
            )

        first = engine()
        assert first.note_execution(program.entry, 2) is None
        assert first.metrics["ineligible"] == 1
        # the sibling skips the doomed compile attempt entirely
        second = engine()
        assert second.note_execution(program.entry, 2) is None
        assert second.metrics["ineligible_shared"] == 1
        assert second.metrics["ineligible"] == 0

    def test_pack_roundtrip_is_executable(self):
        shared = {}
        first_exit, _ = self._run(shared)
        rebuilt = unpack_space(pack_space(shared))
        assert set(rebuilt) == set(shared)
        # a third interpreter seeded only from the pack must behave
        # identically and never compile anything itself
        third_exit, third = self._run(rebuilt)
        assert third_exit == first_exit
        assert third.metrics["shared_hits"] == 1
        assert third.metrics["compiles"] == 0


class TestSelfModifyingCode:
    def test_jit_matches_interpreter_on_smc(self):
        from tests.test_self_modifying_code import SMC_PROGRAM, _expected_exit

        interp = GuestInterpreter.for_program(assemble(SMC_PROGRAM))
        jit = interp.enable_jit(threshold=1)
        assert _run_blocks(interp) == _expected_exit()
        assert jit.metrics["invalidations"] >= 1

    def test_patched_block_recompiles(self):
        # patch inside the executing loop: the compiled block must be
        # invalidated, recompiled against the new bytes, and the result
        # must match a plain stepping interpreter
        source = """
        _start:
            mov ecx, 6
        loop:
            mov eax, 11
            add ebx, eax
            movb [loop + 2], 12
            sub ecx, 1
            jnz loop
            mov eax, 1
            and ebx, 255
            int 0x80
        """
        plain = GuestInterpreter.for_program(assemble(source))
        jitted = GuestInterpreter.for_program(assemble(source))
        engine = jitted.enable_jit(threshold=1)
        assert _run_blocks(jitted) == plain.run()
        assert jitted.stats.as_dict() == plain.stats.as_dict()
        assert engine.metrics["invalidations"] >= 1
        assert engine.metrics["compiles"] >= 2  # old and patched bodies

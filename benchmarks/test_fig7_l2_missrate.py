"""Figure 7: L2 code cache misses per L2 code cache access.

Paper shape: the miss rate falls as speculative translators are added —
speculation pre-populates the L2 code cache ahead of execution.
"""

from conftest import SCALE

from repro.harness import figure7_l2_miss_rate
from repro.harness.runner import run_one


def test_fig7_miss_rate_falls_with_translators(benchmark):
    result = benchmark.pedantic(
        lambda: figure7_l2_miss_rate(scale=SCALE), rounds=1, iterations=1
    )
    print("\n" + result.render())

    improved = 0
    for name in ["164.gzip", "175.vpr", "176.gcc", "186.crafty", "253.perlbmk", "254.gap"]:
        one = run_one(name, "speculative_1", SCALE).l2_miss_rate
        six = run_one(name, "speculative_6", SCALE).l2_miss_rate
        if six < one:
            improved += 1
    assert improved >= 4, "miss rate should fall with more translators on most benchmarks"

    # conservative mode misses on every first touch: worst miss rate
    for name in ["176.gcc", "175.vpr"]:
        cons = run_one(name, "conservative_1", SCALE).l2_miss_rate
        six = run_one(name, "speculative_6", SCALE).l2_miss_rate
        assert six < cons, name

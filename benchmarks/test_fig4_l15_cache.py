"""Figure 4: comparison of L1.5 code cache sizes.

Paper shape: benchmarks whose instruction working set exceeds the L1
code cache (vpr, gcc, crafty, perlbmk, gap, vortex, twolf) improve with
an L1.5; compact benchmarks are insensitive.
"""

from conftest import SCALE

from repro.harness import figure4_l15_cache
from repro.harness.runner import run_one


def test_fig4_l15_cache_sizes(benchmark):
    result = benchmark.pedantic(
        lambda: figure4_l15_cache(scale=SCALE), rounds=1, iterations=1
    )
    print("\n" + result.render())

    # large-code benchmarks: the banked L1.5 pays off
    for name in ["175.vpr", "186.crafty", "300.twolf"]:
        none = run_one(name, "no_l15", SCALE).slowdown
        two_banks = run_one(name, "l15_128k", SCALE).slowdown
        assert two_banks < none, f"{name}: L1.5 should help ({two_banks} vs {none})"

    # compact benchmarks: insensitive (within a few percent)
    for name in ["164.gzip", "256.bzip2"]:
        none = run_one(name, "no_l15", SCALE).slowdown
        two_banks = run_one(name, "l15_128k", SCALE).slowdown
        assert abs(none - two_banks) / two_banks < 0.10, name

    # capacity ordering: more L1.5 never hurts the thrashing benchmarks much
    vpr_one = run_one("175.vpr", "l15_64k", SCALE).slowdown
    vpr_two = run_one("175.vpr", "l15_128k", SCALE).slowdown
    assert vpr_two <= vpr_one * 1.02

"""Shared benchmark settings.

``SCALE`` shrinks every workload (iteration counts) so the full
benchmark session stays in the minutes range; the figure *shapes* are
scale-invariant.  ``benchmarks/run_all.py`` regenerates EXPERIMENTS.md
at full scale.
"""

SCALE = 0.5

#: Figures 9/10 study the morphing phase structure, which only has
#: room to express itself at full workload scale.
MORPH_SCALE = 1.0

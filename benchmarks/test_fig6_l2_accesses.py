"""Figure 6: L2 code cache accesses per cycle.

Paper shape: the poorly-performing applications (gcc, crafty, vortex)
access the L2 code cache far more often per cycle than the compact ones
— the congestion at the shared manager tile behind their slowdowns.
"""

from conftest import SCALE

from repro.harness import figure6_l2_accesses
from repro.harness.runner import run_one


def test_fig6_l2_access_rates(benchmark):
    result = benchmark.pedantic(
        lambda: figure6_l2_accesses(scale=SCALE), rounds=1, iterations=1
    )
    print("\n" + result.render())

    def per_instruction(name):
        # the paper's prose metric ("per dynamic instruction"), which is
        # stable across workload scale, unlike the per-cycle plot
        run = run_one(name, "speculative_6", SCALE)
        return run.l2_code_accesses / run.guest_instructions

    # the worst performers touch the L2 code cache far more often per
    # executed instruction
    for heavy in ["176.gcc", "186.crafty", "255.vortex"]:
        for light in ["181.mcf", "256.bzip2"]:
            assert per_instruction(heavy) > per_instruction(light), (heavy, light)

    # gcc vs the lightest: several times apart (the paper: ~100x at
    # MinneSPEC scale; toy runs compress the range)
    assert per_instruction("176.gcc") > 3 * per_instruction("256.bzip2")

"""Section 4.5 / 5 ablation: what if Raw had emulation hardware?

The paper attributes the emulator's slowdown to specific missing
hardware and proposes adding it: "The addition of a MMU to the Raw
architecture would largely mitigate these differences" (the 3.9x memory
factor), and "If the Raw host architecture were to add a hardware
instruction cache, the lowest level code cache could be large enough to
hold the instruction working set" (the 20x excess of gcc/crafty/vortex).

These configurations *project* those fixes on the same timing model:

* ``hw_mmu`` — TLB-backed guest loads/stores: L1 hits at PIII-class
  latency/occupancy, hardware page-table walks;
* ``hw_icache`` — a large virtual L1 code cache with chaining across
  the whole instruction working set;
* ``hw_full`` — both.
"""

from conftest import MORPH_SCALE as SCALE  # full scale: reuse matters here

from repro.harness.runner import run_one


def _slowdown(name, cfg):
    return run_one(name, cfg, SCALE).slowdown


def test_hardware_ablation_table(benchmark):
    names = ["164.gzip", "176.gcc", "181.mcf", "255.vortex"]
    configs = ["default", "hw_mmu", "hw_icache", "hw_full"]

    def run_table():
        return {n: {c: _slowdown(n, c) for c in configs} for n in names}

    table = benchmark.pedantic(run_table, rounds=1, iterations=1)
    print(f"\n{'benchmark':12s}" + "".join(f"{c:>11s}" for c in configs))
    for name in names:
        print(f"{name:12s}" + "".join(f"{table[name][c]:11.1f}" for c in configs))


def test_hardware_icache_rescues_big_code():
    # the paper: the high-end 20x excess is the code-cache path; a
    # hardware Icache removes most of the *warm* portion of it
    for name in ["176.gcc", "255.vortex"]:
        baseline = _slowdown(name, "default")
        icache = _slowdown(name, "hw_icache")
        assert icache < baseline * 0.90, name

    # compact benchmarks gain nothing from a bigger code cache
    gzip_delta = abs(_slowdown("164.gzip", "hw_icache") - _slowdown("164.gzip", "default"))
    assert gzip_delta / _slowdown("164.gzip", "default") < 0.03


def test_hardware_mmu_helps_memory_path():
    for name in ["164.gzip", "181.mcf"]:
        baseline = _slowdown(name, "default")
        mmu = _slowdown(name, "hw_mmu")
        assert mmu < baseline, name


def test_full_hardware_is_best():
    for name in ["164.gzip", "176.gcc", "181.mcf"]:
        full = _slowdown(name, "hw_full")
        assert full <= _slowdown(name, "hw_mmu") + 0.05, name
        assert full <= _slowdown(name, "hw_icache") + 0.05, name

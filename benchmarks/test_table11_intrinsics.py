"""Figure 11 (table): architecture intrinsics + Section 4.5 accounting.

Paper numbers reproduced exactly by construction (the timing model is
calibrated to them) and validated against measured runs: the composed
"fixable mismatch" floor is 3.9 x 1.3 x 1.1 = 5.5x, and the measured
low-end benchmarks sit within ~1.3-1.6x of it.
"""

from conftest import SCALE

import pytest

from repro.analysis import decompose, expected_slowdown_floor, memory_slowdown_factor
from repro.harness import table11_intrinsics
from repro.harness.runner import run_one
from repro.memsys.memsystem import L1_HIT_LATENCY
from repro.refmachine.intrinsics import EMULATOR_INTRINSICS, PIII_INTRINSICS
from repro.tiled.machine import default_placement
from repro.memsys.memsystem import PipelinedMemorySystem


def test_table11_report(benchmark):
    result = benchmark.pedantic(
        lambda: table11_intrinsics(scale=SCALE), rounds=1, iterations=1
    )
    print("\n" + result.render())

    assert EMULATOR_INTRINSICS.l1_hit_occupancy == 4
    assert EMULATOR_INTRINSICS.l2_hit_latency == 87
    assert EMULATOR_INTRINSICS.l2_miss_latency == 151
    assert PIII_INTRINSICS.execution_units == 3


def test_section45_accounting():
    assert memory_slowdown_factor() == pytest.approx(3.9, abs=0.1)
    assert expected_slowdown_floor() == pytest.approx(5.5, abs=0.2)


def test_measured_low_end_near_floor():
    measured = run_one("181.mcf", "speculative_6", SCALE).slowdown
    residual = decompose(measured).residual_factor
    # paper: ~1.3x unaccounted at the low end of the slowdown spectrum
    assert 0.9 < residual < 2.2


def test_simulated_memory_system_matches_table11():
    """The composed timing of the simulated memory path lands on the
    published intrinsics (this is how the model was calibrated)."""
    grid = default_placement(6, 4)
    memsys = PipelinedMemorySystem(grid)
    memsys.page_table.map_region(0, 1 << 22)

    # warm TLB + bank, flush L1: a pure bank-hit access
    memsys.access(0, 0x8000, False)
    memsys.l1.flush()
    outcome = memsys.access(100_000, 0x8000, False)
    l2_hit_latency = outcome.stall_cycles + L1_HIT_LATENCY
    assert abs(l2_hit_latency - EMULATOR_INTRINSICS.l2_hit_latency) <= 10

    # flush banks too: a DRAM access
    memsys.l1.flush()
    for bank in memsys.banks:
        bank.cache.flush()
    outcome = memsys.access(200_000, 0x8000, False)
    l2_miss_latency = outcome.stall_cycles + L1_HIT_LATENCY
    assert abs(l2_miss_latency - EMULATOR_INTRINSICS.l2_miss_latency) <= 15

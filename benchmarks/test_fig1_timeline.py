"""Figure 1: speculative parallel translation timeline (delta-T).

The paper's opening illustration: the same program finishes earlier
when translation happens speculatively on parallel tiles instead of on
the execution core's critical path.
"""

from conftest import SCALE

from repro.harness import figure1_timeline
from repro.harness.runner import run_one


def test_fig1_timeline(benchmark):
    result = benchmark.pedantic(
        lambda: figure1_timeline(scale=SCALE), rounds=1, iterations=1
    )
    print("\n" + result.render())

    sequential = run_one("197.parser", "conservative_1", SCALE)
    parallel = run_one("197.parser", "speculative_4", SCALE)
    # the paper's deltaT: the parallel translator finishes earlier
    assert parallel.cycles < sequential.cycles
    # and the saving is substantial, not noise
    assert (sequential.cycles - parallel.cycles) / sequential.cycles > 0.05

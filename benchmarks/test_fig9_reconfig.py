"""Figure 9: trading silicon between L2 data cache and translation.

Paper shapes: the 4-bank configuration beats the 1-bank configuration
on memory-demanding benchmarks and not on others (motivating *static*
reconfiguration); the morphing configurations reconfigure at runtime,
with the eager threshold (0) reconfiguring most.
"""

from conftest import MORPH_SCALE as SCALE

from repro.harness import figure9_reconfiguration
from repro.harness.runner import run_one


def test_fig9_static_tradeoff_and_morphing(benchmark):
    result = benchmark.pedantic(
        lambda: figure9_reconfiguration(scale=SCALE), rounds=1, iterations=1
    )
    print("\n" + result.render())

    # memory-bound mcf wants the 4-bank shape
    mcf_9t = run_one("181.mcf", "static_1mem_9trans", SCALE)
    mcf_6t = run_one("181.mcf", "static_4mem_6trans", SCALE)
    assert mcf_6t.slowdown < mcf_9t.slowdown

    # code-bound gcc is indifferent-to-opposite: no static dominates all
    gcc_9t = run_one("176.gcc", "static_1mem_9trans", SCALE)
    gcc_6t = run_one("176.gcc", "static_4mem_6trans", SCALE)
    assert abs(gcc_9t.slowdown - gcc_6t.slowdown) / gcc_6t.slowdown < 0.05

    # morphing actually reconfigures, and the eager threshold most
    for name in ["164.gzip", "181.mcf", "256.bzip2"]:
        t5 = run_one(name, "morph_threshold_5", SCALE)
        t0 = run_one(name, "morph_threshold_0", SCALE)
        assert t5.reconfigurations >= 1, name
        assert t0.reconfigurations >= t5.reconfigurations, name

"""Figure 8: no code optimization vs code optimization.

Paper shape: "For all of the benchmarks, the occupancy of performing
optimization in a speculative parallel environment was far outweighed
by the decrease in runtimes afforded by the optimizations."
"""

from conftest import SCALE

from repro.harness import figure8_optimization
from repro.harness.runner import run_one
from repro.workloads import SPECINT_NAMES


def test_fig8_optimization_always_wins(benchmark):
    result = benchmark.pedantic(
        lambda: figure8_optimization(scale=SCALE), rounds=1, iterations=1
    )
    print("\n" + result.render())

    for name in SPECINT_NAMES:
        noopt = run_one(name, "morph_noopt", SCALE).slowdown
        opt = run_one(name, "morph_opt", SCALE).slowdown
        assert opt < noopt, f"{name}: optimization must win"

    # and the win is substantial on ALU-heavy code (flag elimination)
    ratio = (
        run_one("164.gzip", "morph_noopt", SCALE).slowdown
        / run_one("164.gzip", "morph_opt", SCALE).slowdown
    )
    assert ratio > 1.3

#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md: every table and figure, paper vs measured.

Runs the full experiment grid (by default at full workload scale) and
writes the results, with per-figure commentary comparing the measured
shapes against the paper's published ones.  Alongside the markdown it
writes ``BENCH_results.json`` — a machine-readable record of per-figure
status, cold/warm wall time and key metric values, so the perf
trajectory of this repository accumulates run over run.

The run grid is a work-list executed through the harness's two-level
cache (in-process memo + persistent ``.runcache/`` disk cache) with
optional process-level parallelism; results are bit-identical at any
job count because every simulation is deterministic.

    python benchmarks/run_all.py [output_path] [json_path]
                                 [--jobs N] [--no-cache] [--scale S]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.harness import (
    figure1_timeline,
    figure4_l15_cache,
    figure5_translators,
    figure6_l2_accesses,
    figure7_l2_miss_rate,
    figure8_optimization,
    figure9_reconfiguration,
    figure10_relative,
    table11_intrinsics,
)
from repro.harness.runner import (
    cache_stats,
    configure_disk_cache,
    disk_cache,
    run_one,
    worker_telemetry,
)
from repro.obs import prof

SCALE = 1.0

#: Default machine-readable results path (repo root, next to EXPERIMENTS.md).
RESULTS_JSON = "BENCH_results.json"

_PAPER_NOTES = {
    "Figure 1": (
        "Paper: conceptual timeline — speculative parallel translation overlaps "
        "translation with execution, finishing earlier by deltaT.  Measured: the "
        "4-slave configuration completes the same program substantially earlier "
        "than the sequential-style conservative translator."
    ),
    "Figure 4": (
        "Paper: vpr, gcc, crafty, perlbmk, gap, vortex and twolf have instruction "
        "working sets larger than the L1 code cache and benefit from the banked "
        "L1.5; compact benchmarks are insensitive.  Measured: same split — the "
        "large-code benchmarks improve with L1.5 capacity (vpr most strongly), "
        "gzip/mcf/parser/bzip2 are flat."
    ),
    "Figure 5": (
        "Paper: slowdowns span ~7x-110x; adding translation tiles accelerates "
        "execution; for vpr/gcc/crafty the parallel configurations lose to the "
        "conservative translator (manager congestion + no preemption); the "
        "9-translator point trades three L2 data banks and regresses memory-"
        "intensive apps.  Measured: slowdowns span ~7x-100x with the same "
        "ordering (gcc/vortex/crafty worst; gzip/mcf/parser/bzip2 near the "
        "floor); the conservative-beats-speculative anomaly reproduces at the "
        "single-slave point (our toy working sets saturate speculation by ~4 "
        "slaves, so wider configs recover); mcf regresses from 6 to 9 "
        "translators exactly as published."
    ),
    "Figure 6": (
        "Paper: L2 code-cache access rates span three decades, with gcc, crafty "
        "and vortex ~100x more likely to access the L2 per dynamic instruction.  "
        "Measured: same ordering (crafty/gcc/vortex top, bzip2/mcf bottom); the "
        "range is compressed to ~1 decade because toy-scale runs are ~10^6 "
        "cycles instead of ~10^10, which inflates every benchmark's cold-start "
        "component."
    ),
    "Figure 7": (
        "Paper: the L2 code-cache miss rate falls as speculative translators are "
        "added.  Measured: same trend on every large-code benchmark; the "
        "conservative translator misses on every first touch."
    ),
    "Figure 8": (
        "Paper: optimization wins on all benchmarks — its cost is off the "
        "critical path.  Measured: optimization wins everywhere, by 1.3x-1.9x."
    ),
    "Figure 9": (
        "Paper: the 4-bank static beats the 1-bank static on memory-demanding "
        "benchmarks and not others; morphing configurations reconfigure at "
        "runtime.  Measured: mcf prefers 4 banks by ~15%, gcc is indifferent; "
        "thresholds 15/5 reconfigure sparsely while the eager threshold 0 "
        "reconfigures an order of magnitude more."
    ),
    "Figure 10": (
        "Paper: dynamic reconfiguration beats the best static configuration on "
        "gzip, mcf, parser and bzip2 (up to ~3%); performance is largely "
        "decoupled from the threshold.  Measured: morphing (thresholds 15/5) "
        "edges out the best static on the phase-structured benchmarks "
        "(gzip/parser/bzip2) and matches it on mcf; thresholds 15 and 5 are "
        "indistinguishable while the eager threshold 0 pays for its "
        "reconfiguration churn — the same decoupling the paper reports."
    ),
    "Figure 11 (table)": (
        "Paper: emulator intrinsics L1 6/4, L2 87/87, miss 151/87 vs PIII 3/1, "
        "7/1, 79/1; accounting 3.9 x 1.3 x 1.1 = 5.5x expected floor, leaving "
        "~1.3x residual at the low end.  Measured: the simulated memory path is "
        "calibrated to land on these intrinsics (validated by test_table11) and "
        "the measured low-end residual is ~1.3-1.6x."
    ),
}


def _parse_args(argv) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("output_path", nargs="?", default="EXPERIMENTS.md")
    parser.add_argument("json_path", nargs="?", default=RESULTS_JSON)
    parser.add_argument(
        "--jobs", type=int, default=os.cpu_count() or 1,
        help="worker processes for the run grid (default: CPU count)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent .runcache/ disk cache",
    )
    parser.add_argument(
        "--scale", type=float, default=SCALE,
        help=f"workload scale factor (default {SCALE}; CI smoke uses less)",
    )
    parser.add_argument(
        "--no-jit", action="store_true",
        help="disable the block JIT (results are bit-identical; only "
             "wall-clock changes — this flag exists to measure that)",
    )
    parser.add_argument(
        "--no-trace-jit", action="store_true",
        help="disable the trace JIT tier while keeping the block JIT "
             "(bit-identical results; isolates the superblock speedup)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="enable the phase profiler (REPRO_PROF=1) in this process "
             "and every worker; per-phase host time lands in the JSON "
             "record and the benchmark history",
    )
    parser.add_argument(
        "--no-history", action="store_true",
        help="skip appending this run to .benchhistory/history.jsonl",
    )
    return parser.parse_args(argv)


def main(argv=None) -> None:
    args = _parse_args(argv)
    scale = args.scale
    if args.no_jit:
        # before any worker pool exists, so every worker inherits it
        os.environ["REPRO_JIT"] = "0"
    if args.no_trace_jit:
        os.environ["REPRO_TRACEJIT"] = "0"
    if args.profile:
        # likewise before the pool: workers resolve REPRO_PROF at import
        os.environ[prof.ENABLE_ENV] = "1"
        prof.enable()
    if args.no_cache:
        configure_disk_cache(enabled=False)
    figures = [
        figure1_timeline,
        figure4_l15_cache,
        figure5_translators,
        figure6_l2_accesses,
        figure7_l2_miss_rate,
        figure8_optimization,
        figure9_reconfiguration,
        figure10_relative,
        table11_intrinsics,
    ]

    started = time.time()
    sections = []
    failures = []
    figure_records = []
    for figure_fn in figures:
        fig_started = time.time()
        try:
            result = figure_fn(scale=scale, jobs=args.jobs)
        except Exception as exc:  # keep going; report the failure at exit
            failures.append(f"{figure_fn.__name__}: {exc!r}")
            print(f"{figure_fn.__name__}: FAILED ({exc!r})", file=sys.stderr)
            figure_records.append(
                {
                    "figure": figure_fn.__name__,
                    "status": "failed",
                    "error": repr(exc),
                    "seconds": round(time.time() - fig_started, 2),
                }
            )
            continue
        cold = time.time() - fig_started
        # warm pass: every cell is now memoized, so this measures pure
        # harness/render overhead — the cost of a cached re-run
        warm_started = time.time()
        figure_fn(scale=scale, jobs=args.jobs)
        warm = time.time() - warm_started
        print(f"{result.figure}: done in {cold:.0f}s (warm re-run {warm:.2f}s)")
        figure_records.append(
            {
                "figure": result.figure,
                "title": result.title,
                "status": "ok",
                "seconds": round(cold, 2),
                "cold_seconds": round(cold, 2),
                "warm_seconds": round(warm, 2),
                "columns": result.columns,
                "rows": result.rows,
                "notes": result.notes,
            }
        )
        note = _PAPER_NOTES.get(result.figure, "")
        block = [f"## {result.figure} — {result.title}", ""]
        if note:
            block += [f"*Paper vs measured:* {note}", ""]
        block += ["```", result.render(), "```", ""]
        sections.append("\n".join(block))

    if failures:
        _write_results_json(args, figure_records, started, low=None, high=None)
        print(f"\n{len(failures)} figure(s) failed:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        sys.exit(1)

    low = min(
        run_one(n, "speculative_6", scale).slowdown
        for n in ["164.gzip", "181.mcf", "197.parser", "256.bzip2"]
    )
    high = max(
        run_one(n, "speculative_6", scale).slowdown
        for n in ["176.gcc", "255.vortex", "186.crafty"]
    )
    _write_results_json(args, figure_records, started, low=low, high=high)

    header = f"""# EXPERIMENTS — paper vs measured

Reproduction of every table and figure in the evaluation section of
*Constructing Virtual Architectures on a Tiled Processor* (Wentzlaff &
Agarwal, CGO 2006), regenerated by `python benchmarks/run_all.py`
(workload scale {scale}, total {time.time() - started:.0f}s).

**Headline result.** The paper reports a 7x-110x slowdown running x86
SpecInt binaries on the 16-tile Raw prototype versus a Pentium III,
clock for clock.  Measured here (speculative 6-translator
configuration): **{low:.1f}x at the low end** (gzip/mcf/parser/bzip2
band) and **{high:.1f}x at the high end** (gcc/vortex/crafty band),
with the same per-benchmark ordering.

Absolute numbers are not expected to match — the substrate is a
calibrated timing model over synthetic MinneSPEC-scale workloads, not
the authors' hardware — but every figure's *shape* (who wins, by what
factor, where the crossovers fall) is asserted by the benchmark suite
in `benchmarks/`.

"""
    with open(args.output_path, "w") as handle:
        handle.write(header + "\n".join(sections))
    print(f"\nwrote {args.output_path} in {time.time() - started:.0f}s total")


def _perf_smoke_record() -> dict:
    """Inner-loop throughput micro-benchmark (trackable across PRs)."""
    try:
        import perf_smoke
    except ImportError:  # run outside benchmarks/ on sys.path
        return {"status": "skipped", "reason": "perf_smoke not importable"}
    try:
        return {"status": "ok", **perf_smoke.measure()}
    except Exception as exc:  # pragma: no cover - diagnostic only
        return {"status": "failed", "error": repr(exc)}


def _write_results_json(args, figure_records, started, low, high) -> None:
    """Persist the machine-readable benchmark record."""
    passed = sum(1 for record in figure_records if record["status"] == "ok")
    disk = disk_cache()
    total_seconds = round(time.time() - started, 2)
    # pooled worker telemetry: per-worker cache hit/miss/latency and
    # phase profiles, plus the deterministic cross-worker aggregate
    telemetry = worker_telemetry()
    doc = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "scale": args.scale,
        "jobs": args.jobs,
        "jit": not args.no_jit,
        "trace_jit": not (args.no_jit or args.no_trace_jit),
        "total_seconds": total_seconds,
        "figures_passed": passed,
        "figures_failed": len(figure_records) - passed,
        "headline": {
            "slowdown_low_band": round(low, 3) if low is not None else None,
            "slowdown_high_band": round(high, 3) if high is not None else None,
        },
        "run_cache": cache_stats(),
        "disk_cache": disk.stats() if disk is not None else {"enabled": False},
        "perf_smoke": _perf_smoke_record(),
        "workers": telemetry,
        "figures": figure_records,
    }
    merged_profile = None
    if prof.active().enabled:
        parent_profile = prof.active().snapshot()
        aggregate = telemetry.get("aggregate") or {}
        merged_profile = prof.merge_profiles(
            [parent_profile, aggregate.get("profile") or {}]
        )
        doc["profile"] = {"parent": parent_profile, "merged": merged_profile}
    with open(args.json_path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.json_path}")
    if merged_profile is not None and merged_profile.get("paths"):
        print(prof.render_profile(merged_profile, limit=15))
    if not args.no_history:
        try:
            _append_history(args, figure_records, total_seconds, low, high,
                            merged_profile)
        except OSError as err:  # history is best-effort, never fail the run
            print(f"history append failed: {err}", file=sys.stderr)


def _append_history(args, figure_records, total_seconds, low, high, profile) -> None:
    """Give this run a durable line in ``.benchhistory/history.jsonl``."""
    from repro.obs.history import BenchHistory, make_record

    figures = {
        record["figure"]: {
            "cold_seconds": record["cold_seconds"],
            "warm_seconds": record["warm_seconds"],
        }
        for record in figure_records
        if record.get("status") == "ok" and "cold_seconds" in record
    }
    metrics = {}
    if low is not None:
        metrics["slowdown_low_band"] = round(low, 3)
    if high is not None:
        metrics["slowdown_high_band"] = round(high, 3)
    record = make_record(
        "run_all",
        scale=args.scale,
        jobs=args.jobs,
        jit=not args.no_jit,
        total_seconds=total_seconds,
        figures=figures or None,
        metrics=metrics or None,
        phases=prof.phase_totals(profile) if profile else None,
    )
    path = BenchHistory().append(record)
    print(f"appended history record to {path}")


if __name__ == "__main__":
    main()

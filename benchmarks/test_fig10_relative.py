"""Figure 10: relative performance of the Figure 9 configurations.

Paper shapes: normalized to the 1-mem/9-trans static, the 4-mem/6-trans
static wins on some benchmarks and loses on others; introspective
dynamic reconfiguration can beat the *best* static configuration on
phase-structured benchmarks (the paper: gzip, mcf, parser, bzip2, by up
to ~3%), while the reconfiguration-threshold choice is largely
decoupled from performance — except that the eager threshold (0) pays
for its reconfiguration churn.
"""

from conftest import MORPH_SCALE as SCALE

from repro.harness import figure10_relative
from repro.harness.runner import run_one


def test_fig10_morphing_vs_statics(benchmark):
    result = benchmark.pedantic(
        lambda: figure10_relative(scale=SCALE), rounds=1, iterations=1
    )
    print("\n" + result.render())

    # morphing beats the best static on at least two of the paper's
    # phase-structured winners
    wins = 0
    for name in ["164.gzip", "181.mcf", "197.parser", "256.bzip2"]:
        best_static = min(
            run_one(name, "static_1mem_9trans", SCALE).cycles,
            run_one(name, "static_4mem_6trans", SCALE).cycles,
        )
        morph = run_one(name, "morph_threshold_5", SCALE).cycles
        if morph < best_static:
            wins += 1
    assert wins >= 2, "morphing should beat the best static on phase-heavy benchmarks"

    # thresholds 15 and 5 perform nearly identically (decoupled), while
    # threshold 0 thrashes
    for name in ["181.mcf", "256.bzip2"]:
        t15 = run_one(name, "morph_threshold_15", SCALE).cycles
        t5 = run_one(name, "morph_threshold_5", SCALE).cycles
        t0 = run_one(name, "morph_threshold_0", SCALE).cycles
        assert abs(t15 - t5) / t5 < 0.02, name
        assert t0 >= t5, name

#!/usr/bin/env python
"""Micro-benchmark of the simulator's hot loops.

Measures blocks-executed-per-second and guest-instructions-per-second
for the timing VM — with the block JIT off (pure interpreter dispatch),
with it on and warm but the trace tier disabled (compiled closures and
chaining only), and fully warm with superblock traces adopted from the
shared space (the steady state every sweep cell after the first sees) —
plus raw interpreter instructions-per-second.  ``run_all.py``
embeds the numbers in ``BENCH_results.json`` so the performance
trajectory of the inner loop is trackable across PRs.

``--check`` compares the measured JIT speedup against the committed
``perf_baseline.json`` and exits non-zero when it regresses more than
20% — the CI perf gate.  Regenerate the baseline on a quiet machine
with ``--write-baseline`` when the speedup legitimately moves.

    python benchmarks/perf_smoke.py [--scale S] [--workload NAME]
                                    [--json] [--check] [--write-baseline]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.dbt.transcache import TranslationCache
from repro.guest.interpreter import GuestInterpreter
from repro.morph.config import PRESETS
from repro.obs import prof
from repro.vm.timing import TimingVM
from repro.workloads import build_workload

DEFAULT_WORKLOAD = "164.gzip"
DEFAULT_SCALE = 0.3

#: Loop-dominated microbenchmark for the trace tier.  The smoke-scale
#: gzip run executes too few hot blocks for superblock traces to matter
#: (its trace_speedup hovers around 1.0x, inside the noise); this loop —
#: a computed jump plus a conditional back-edge, 100k iterations — is
#: the shape traces are built for and yields a stable speedup signal.
TRACE_HOT_LOOP = """
_start:
    mov ecx, 100000
head:
    add eax, 3
    xor eax, ecx
    mov esi, b1
    jmp esi
b1:
    add ebx, eax
    shr eax, 1
    sub ecx, 1
    jnz head
    mov eax, 1
    and ebx, 255
    int 0x80
"""

#: Committed reference numbers for --check (next to this script).
BASELINE_PATH = Path(__file__).resolve().parent / "perf_baseline.json"

#: --check fails when the measured JIT speedup drops below this
#: fraction of the committed baseline (80% = a >20% regression).
REGRESSION_FLOOR = 0.8


def _timed_run(program, config, **vm_kwargs):
    started = time.perf_counter()
    result = TimingVM(program, config, **vm_kwargs).run()
    return result, time.perf_counter() - started


#: Warm-cache runs finish in tens of milliseconds at the default scale;
#: a single sample is dominated by scheduler noise.  Best-of-N is the
#: standard antidote: the minimum is the least-perturbed observation.
WARM_REPEATS = 3


def _best_of(build, config, repeats=WARM_REPEATS, **vm_kwargs):
    best = None
    result = None
    for _ in range(repeats):
        run_result, seconds = _timed_run(build(), config, **vm_kwargs)
        if result is None:
            result = run_result
        else:
            assert run_result == result, "repeated warm run diverged"
        if best is None or seconds < best:
            best = seconds
    return result, best


def _measure_trace_hot_loop(config) -> dict:
    """Block-JIT vs trace-JIT on the loop microbenchmark, both warm."""
    from repro.guest.assembler import assemble

    program = assemble(TRACE_HOT_LOOP)
    cache = TranslationCache()
    TimingVM(program, config, jit=True,
             translation_cache=cache, program_key="trace-hot-loop").run()
    build = lambda: assemble(TRACE_HOT_LOOP)
    block_result, block_seconds = _best_of(
        build, config, jit=True, trace_jit=False,
        translation_cache=cache, program_key="trace-hot-loop",
    )
    trace_result, trace_seconds = _best_of(
        build, config, jit=True, trace_jit=True,
        translation_cache=cache, program_key="trace-hot-loop",
    )
    assert trace_result == block_result, "hot-loop trace run diverged"
    blocks = block_result.blocks_executed
    return {
        "blocks_executed": blocks,
        "block_jit_blocks_per_second": round(blocks / block_seconds, 1),
        "trace_jit_blocks_per_second": round(blocks / trace_seconds, 1),
        "trace_speedup": round(block_seconds / trace_seconds, 3),
    }


def measure(workload: str = DEFAULT_WORKLOAD, scale: float = DEFAULT_SCALE) -> dict:
    """Timing-VM runs (JIT off / JIT warm) + a raw interpreter run."""
    program = build_workload(workload, scale=scale)
    config = PRESETS["speculative_4"]

    result, nojit_seconds = _timed_run(program, config, jit=False)

    # warm the shared spaces (translations + compiled closures + traces),
    # then measure the steady state a sweep's 2nd..Nth cells run in —
    # once with the trace tier disabled (block JIT + chaining only) and
    # once with superblock traces adopted from the shared space
    cache = TranslationCache()
    program = build_workload(workload, scale=scale)
    _timed_run(program, config, jit=True,
               translation_cache=cache, program_key=workload)
    build = lambda: build_workload(workload, scale=scale)
    notrace_result, notrace_seconds = _best_of(
        build, config, jit=True, trace_jit=False,
        translation_cache=cache, program_key=workload,
    )
    assert notrace_result == result, "trace-off JIT run diverged from JIT-off run"
    jit_result, jit_seconds = _best_of(
        build, config, jit=True,
        translation_cache=cache, program_key=workload,
    )
    assert jit_result == result, "JIT-on run diverged from JIT-off run"

    # the same warm cell under an active phase profiler: measures the
    # profiling overhead (documented bound: a few percent) and asserts
    # the determinism invariant — profiled results are bit-identical
    profiler = prof.PhaseProfiler()
    previous = prof.set_profiler(profiler)
    try:
        prof_result, prof_seconds = _best_of(
            build, config, jit=True,
            translation_cache=cache, program_key=workload,
        )
    finally:
        # restore, don't disable: run_all may be profiling around us
        prof.set_profiler(previous)
    assert prof_result == result, "profiled run diverged from unprofiled run"
    profile_paths = len(profiler.snapshot().get("paths", {}))

    hot_loop = _measure_trace_hot_loop(config)

    program = build_workload(workload, scale=scale)
    started = time.perf_counter()
    interp = GuestInterpreter.for_program(program)
    interp.run()
    interp_seconds = time.perf_counter() - started

    return {
        "workload": workload,
        "scale": scale,
        "timing_vm": {
            "seconds": round(nojit_seconds, 4),
            "blocks_executed": result.blocks_executed,
            "guest_instructions": result.guest_instructions,
            "blocks_per_second": round(result.blocks_executed / nojit_seconds, 1),
            "instructions_per_second": round(
                result.guest_instructions / nojit_seconds, 1
            ),
        },
        "timing_vm_jit_no_trace": {
            "seconds": round(notrace_seconds, 4),
            "blocks_per_second": round(
                result.blocks_executed / notrace_seconds, 1
            ),
        },
        "timing_vm_jit": {
            "seconds": round(jit_seconds, 4),
            "blocks_per_second": round(result.blocks_executed / jit_seconds, 1),
            "instructions_per_second": round(
                result.guest_instructions / jit_seconds, 1
            ),
        },
        "jit_speedup": round(nojit_seconds / jit_seconds, 3),
        "trace_speedup": round(notrace_seconds / jit_seconds, 3),
        "trace_hot_loop": hot_loop,
        "profiling": {
            "seconds": round(prof_seconds, 4),
            "paths": profile_paths,
            "overhead_vs_jit_warm": round(prof_seconds / jit_seconds - 1.0, 4),
        },
        "interpreter": {
            "seconds": round(interp_seconds, 4),
            "instructions": interp.stats["instructions"],
            "instructions_per_second": round(
                interp.stats["instructions"] / interp_seconds, 1
            ),
        },
    }


def append_history(doc: dict) -> None:
    """Append this measurement to the cross-run benchmark history."""
    from repro.obs.history import BenchHistory, make_record

    record = make_record(
        f"perf_smoke:{doc['workload']}",
        scale=doc["scale"], jobs=1, jit=True,
        metrics={
            "jit_speedup": doc["jit_speedup"],
            "timing_blocks_per_second": doc["timing_vm"]["blocks_per_second"],
            # jit_blocks_per_second stays the block-JIT-only number so
            # the history series remains comparable across PRs; the
            # trace tier gets its own key
            "jit_blocks_per_second": (
                doc["timing_vm_jit_no_trace"]["blocks_per_second"]
            ),
            "trace_jit_blocks_per_second": (
                doc["timing_vm_jit"]["blocks_per_second"]
            ),
            "trace_speedup": doc["trace_speedup"],
            "trace_hot_speedup": doc["trace_hot_loop"]["trace_speedup"],
            "interp_instructions_per_second": (
                doc["interpreter"]["instructions_per_second"]
            ),
            "profiling_overhead": doc["profiling"]["overhead_vs_jit_warm"],
        },
    )
    path = BenchHistory().append(record)
    print(f"perf-smoke: appended history record to {path}", file=sys.stderr)


def check_against_baseline(doc: dict) -> int:
    """Compare ``doc`` to the committed baseline; returns an exit code."""
    try:
        baseline = json.loads(BASELINE_PATH.read_text())
    except (OSError, ValueError) as err:
        print(f"perf-smoke: cannot read baseline {BASELINE_PATH}: {err}")
        return 2
    reference = baseline.get("jit_speedup")
    if not isinstance(reference, (int, float)) or reference <= 0:
        print(f"perf-smoke: baseline has no usable jit_speedup: {reference!r}")
        return 2
    measured = doc["jit_speedup"]
    floor = REGRESSION_FLOOR * reference
    verdict = "ok" if measured >= floor else "REGRESSION"
    print(
        f"perf-smoke: jit_speedup {measured:.3f}x "
        f"(baseline {reference:.3f}x, floor {floor:.3f}x): {verdict}"
    )
    return 0 if measured >= floor else 1


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default=DEFAULT_WORKLOAD)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--json", action="store_true", help="print JSON only")
    parser.add_argument(
        "--check", action="store_true",
        help="fail if jit_speedup regressed >20%% vs perf_baseline.json",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record the measured numbers as the new committed baseline",
    )
    parser.add_argument(
        "--no-history", action="store_true",
        help="skip appending this measurement to .benchhistory/",
    )
    args = parser.parse_args()
    doc = measure(args.workload, args.scale)
    if not args.no_history:
        try:
            append_history(doc)
        except OSError as err:  # history is best-effort, never fail the run
            print(f"perf-smoke: history append failed: {err}", file=sys.stderr)
    if args.write_baseline:
        payload = {
            "workload": doc["workload"],
            "scale": doc["scale"],
            "jit_speedup": doc["jit_speedup"],
            "timing_vm_blocks_per_second": doc["timing_vm"]["blocks_per_second"],
            # block-JIT-only number for series comparability with
            # pre-trace baselines; the trace tier gets its own key
            "timing_vm_jit_blocks_per_second": (
                doc["timing_vm_jit_no_trace"]["blocks_per_second"]
            ),
            "trace_jit_blocks_per_second": doc["timing_vm_jit"]["blocks_per_second"],
            "trace_speedup": doc["trace_speedup"],
            "trace_hot_speedup": doc["trace_hot_loop"]["trace_speedup"],
        }
        BASELINE_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {BASELINE_PATH}")
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    elif not args.check:
        vm = doc["timing_vm"]
        jit = doc["timing_vm_jit"]
        notrace = doc["timing_vm_jit_no_trace"]
        print(
            f"{doc['workload']} @ scale {doc['scale']}: "
            f"{vm['blocks_per_second']:.0f} blocks/s (interpreter), "
            f"{notrace['blocks_per_second']:.0f} blocks/s (block JIT warm), "
            f"{jit['blocks_per_second']:.0f} blocks/s (trace JIT warm, "
            f"{doc['jit_speedup']:.2f}x total, "
            f"{doc['trace_speedup']:.2f}x from traces); "
            f"{doc['interpreter']['instructions_per_second']:.0f} instr/s "
            f"(raw interpreter)"
        )
        hot = doc["trace_hot_loop"]
        print(
            f"hot loop ({hot['blocks_executed']} blocks): "
            f"{hot['block_jit_blocks_per_second']:.0f} blocks/s (block JIT) vs "
            f"{hot['trace_jit_blocks_per_second']:.0f} blocks/s (trace JIT), "
            f"{hot['trace_speedup']:.2f}x from traces"
        )
    if args.check:
        sys.exit(check_against_baseline(doc))


if __name__ == "__main__":
    main()

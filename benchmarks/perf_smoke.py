#!/usr/bin/env python
"""Micro-benchmark of the simulator's hot loops.

Measures blocks-executed-per-second and guest-instructions-per-second
for the timing VM (which exercises the interpreter's block fast path),
plus raw interpreter instructions-per-second.  ``run_all.py`` embeds
the numbers in ``BENCH_results.json`` so the performance trajectory of
the inner loop is trackable across PRs.

    python benchmarks/perf_smoke.py [--scale S] [--workload NAME] [--json]
"""

from __future__ import annotations

import argparse
import json
import time

from repro.guest.interpreter import GuestInterpreter
from repro.morph.config import PRESETS
from repro.vm.timing import TimingVM
from repro.workloads import build_workload

DEFAULT_WORKLOAD = "164.gzip"
DEFAULT_SCALE = 0.3


def measure(workload: str = DEFAULT_WORKLOAD, scale: float = DEFAULT_SCALE) -> dict:
    """One timing-VM run + one raw interpreter run, with throughputs."""
    program = build_workload(workload, scale=scale)

    started = time.perf_counter()
    vm = TimingVM(program, PRESETS["speculative_4"])
    result = vm.run()
    vm_seconds = time.perf_counter() - started

    program = build_workload(workload, scale=scale)
    started = time.perf_counter()
    interp = GuestInterpreter.for_program(program)
    interp.run()
    interp_seconds = time.perf_counter() - started

    return {
        "workload": workload,
        "scale": scale,
        "timing_vm": {
            "seconds": round(vm_seconds, 4),
            "blocks_executed": result.blocks_executed,
            "guest_instructions": result.guest_instructions,
            "blocks_per_second": round(result.blocks_executed / vm_seconds, 1),
            "instructions_per_second": round(result.guest_instructions / vm_seconds, 1),
        },
        "interpreter": {
            "seconds": round(interp_seconds, 4),
            "instructions": interp.stats["instructions"],
            "instructions_per_second": round(
                interp.stats["instructions"] / interp_seconds, 1
            ),
        },
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default=DEFAULT_WORKLOAD)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--json", action="store_true", help="print JSON only")
    args = parser.parse_args()
    doc = measure(args.workload, args.scale)
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
        return
    vm = doc["timing_vm"]
    print(
        f"{doc['workload']} @ scale {doc['scale']}: "
        f"{vm['blocks_per_second']:.0f} blocks/s, "
        f"{vm['instructions_per_second']:.0f} guest instr/s (timing VM); "
        f"{doc['interpreter']['instructions_per_second']:.0f} instr/s (raw interpreter)"
    )


if __name__ == "__main__":
    main()

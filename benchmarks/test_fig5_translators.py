"""Figure 5: slowdown with differing numbers of translation tiles.

Paper shapes reproduced:

* speculative parallel translation beats the conservative sequential
  translator once a couple of slaves are available, saturating by ~6;
* the vpr/gcc/crafty anomaly — a *single* speculative translator is
  worse than the conservative one for code-heavy benchmarks (demand
  misses queue behind speculative work; no preemption);
* the 9-translator configuration trades three L2 data-cache banks and
  regresses the memory-bound benchmark (mcf).
"""

from conftest import SCALE

from repro.harness import figure5_translators
from repro.harness.runner import run_one

_BIG_CODE = ["175.vpr", "176.gcc", "186.crafty"]
_SMALL_CODE = ["164.gzip", "197.parser", "256.bzip2"]


def test_fig5_translator_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: figure5_translators(scale=SCALE), rounds=1, iterations=1
    )
    print("\n" + result.render())

    for name in _BIG_CODE + _SMALL_CODE:
        cons = run_one(name, "conservative_1", SCALE).slowdown
        spec2 = run_one(name, "speculative_2", SCALE).slowdown
        spec6 = run_one(name, "speculative_6", SCALE).slowdown
        # more translation resources help, saturating
        assert spec6 <= spec2 * 1.02, name
        assert spec6 < cons, f"{name}: speculation should beat conservative"

    # the anomaly: one speculative translator loses to conservative on
    # the code-heavy benchmarks (manager congestion + no preemption)
    for name in _BIG_CODE:
        cons = run_one(name, "conservative_1", SCALE).slowdown
        spec1 = run_one(name, "speculative_1", SCALE).slowdown
        assert spec1 > cons, f"{name}: expected the speculative_1 anomaly"

    # the 9-translator config trades L2 data banks: memory-bound mcf regresses
    mcf6 = run_one("181.mcf", "speculative_6", SCALE).slowdown
    mcf9 = run_one("181.mcf", "speculative_9", SCALE).slowdown
    assert mcf9 > mcf6

    # headline spread: low-end ~7-12x, high-end dozens
    assert run_one("181.mcf", "speculative_6", SCALE).slowdown < 15
    assert run_one("176.gcc", "speculative_6", SCALE).slowdown > 40
